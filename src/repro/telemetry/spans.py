"""Nesting trace spans that survive process boundaries.

A :func:`span` is a context manager timing one unit of work.  Spans
nest through a process-local stack; each span snapshots the ambient
``(run_id, task_id, worker_pid)`` context so a span recorded inside a
pool worker is attributable after it has been shipped back to the
orchestrator.

Cross-process protocol: workers record spans exactly like the serial
path, but completed *root* spans accumulate in a pending buffer
instead of a journal (workers never write files).  The executor drains
that buffer (:func:`export_pending`) into the task-result envelope,
and the parent splices the serialized spans into its own live tree
(:func:`attach_children`) under the ``map_tasks`` span — producing one
tree whatever backend ran the work.

In the orchestrator, a completed root span is written to the active
run journal as a ``span`` event (the report CLI reads these); with no
journal it is kept in the pending buffer (bounded) for inspection.

Durations come from ``time.perf_counter`` and are process-relative:
only durations, names, attrs, and the tree shape are meaningful across
processes — never absolute start times.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from .state import STATE

__all__ = [
    "Span",
    "span",
    "set_task",
    "current_task",
    "export_pending",
    "attach_children",
    "reset",
    "SAMPLED_SPANS",
]

#: Open spans, innermost last (the runtime is single-threaded per
#: process, so a module-level stack is the whole story).
_STACK: List["Span"] = []
#: Completed root spans awaiting drain (worker export / inspection).
_PENDING: List[Dict[str, Any]] = []
_PENDING_LIMIT = 256
#: Ambient task id (set by the executor around each task execution).
_TASK_ID: Optional[int] = None

#: High-frequency per-epoch spans eligible for ``STATE.sample_n``
#: sampling.  Root spans (fit/chunk/generate and the worker task roots)
#: are deliberately absent: sampling must never drop the tree's anchor
#: points, only thin the repetitive per-epoch interior.
SAMPLED_SPANS = frozenset({"dg.epoch", "rowgan.epoch", "stan.field"})
#: Per-name occurrence counters driving every-n-th selection.
_SAMPLE_COUNTS: Dict[str, int] = {}


class Span:
    """One timed unit of work; children are sub-spans (live ``Span``
    objects in-process, plain dicts when spliced from a worker)."""

    __slots__ = ("name", "attrs", "duration", "task_id", "worker_pid",
                 "children", "_start")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.duration: float = 0.0
        self.task_id = _TASK_ID
        self.worker_pid = os.getpid()
        self.children: List[Any] = []
        self._start = time.perf_counter()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_s": round(self.duration, 6),
            "worker_pid": self.worker_pid,
        }
        if self.run_id is not None:
            out["run_id"] = self.run_id
        if self.task_id is not None:
            out["task_id"] = self.task_id
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [
                c.to_dict() if isinstance(c, Span) else c
                for c in self.children
            ]
        return out

    @property
    def run_id(self) -> Optional[str]:
        return STATE.run_id


def set_task(task_id: Optional[int]) -> None:
    """Set (or clear, with None) the ambient task id new spans carry."""
    global _TASK_ID
    _TASK_ID = task_id


def current_task() -> Optional[int]:
    return _TASK_ID


@contextmanager
def span(name: str, **attrs: Any):
    """Time a block as a span.  Yields the live :class:`Span` (or None
    on the disabled fast path, which allocates nothing)."""
    if not STATE.enabled:
        yield None
        return
    if STATE.sample_n > 1 and name in SAMPLED_SPANS:
        count = _SAMPLE_COUNTS.get(name, 0)
        _SAMPLE_COUNTS[name] = count + 1
        if count % STATE.sample_n:
            yield None
            return
    record = Span(name, attrs)
    _STACK.append(record)
    try:
        yield record
    finally:
        _STACK.pop()
        record.duration = time.perf_counter() - record._start
        if _STACK:
            _STACK[-1].children.append(record)
        else:
            _complete_root(record)


def _complete_root(record: Span) -> None:
    journal = STATE.journal
    if journal is not None:
        journal.event("span", span=record.to_dict())
        return
    _PENDING.append(record.to_dict())
    if len(_PENDING) > _PENDING_LIMIT:
        del _PENDING[: len(_PENDING) - _PENDING_LIMIT]


def export_pending() -> List[Dict[str, Any]]:
    """Drain and return the completed root spans (worker wire format)."""
    out = list(_PENDING)
    _PENDING.clear()
    return out


def attach_children(serialized: List[Dict[str, Any]]) -> None:
    """Splice worker span dicts into the live tree: as children of the
    innermost open span, or into the pending buffer when no span is
    open (spliced roots are already complete — journaling them again
    would double-count, so they are buffered, not re-emitted)."""
    if not serialized:
        return
    if _STACK:
        _STACK[-1].children.extend(serialized)
    else:
        _PENDING.extend(serialized)
        if len(_PENDING) > _PENDING_LIMIT:
            del _PENDING[: len(_PENDING) - _PENDING_LIMIT]


def reset() -> None:
    """Drop all span state (session teardown / worker-task setup)."""
    _STACK.clear()
    _PENDING.clear()
    _SAMPLE_COUNTS.clear()
    set_task(None)
