"""repro — a reproduction of NetShare (Yin et al., SIGCOMM 2022):
practical GAN-based synthetic IP header trace generation.

Quickstart::

    from repro import NetShare, NetShareConfig, load_dataset

    real = load_dataset("ugr16", n_records=1000, seed=0)
    model = NetShare(NetShareConfig(n_chunks=3, epochs_seed=20))
    model.fit(real)
    synthetic = model.generate(1000)

Subpackages: ``core`` (NetShare pipeline), ``gan`` (DoppelGANger),
``datasets`` (trace substrate + the six evaluation workloads),
``baselines`` (CTGAN/E-WGAN-GP/STAN/PAC-GAN/PacketCGAN/Flow-WGAN),
``metrics`` (JSD/EMD/rank/consistency), ``privacy`` (DP-SGD + RDP
accountant), ``sketches`` (CMS/CS/UnivMon/NitroSketch), ``ml``
(classifier suite), ``netml`` (anomaly detection), ``tasks``
(downstream-task harnesses), ``nn`` (autograd substrate),
``telemetry`` (run journal, metrics, and trace spans).
"""

from .core import NetShare, NetShareConfig
from .datasets import FlowTrace, PacketTrace, load_dataset
from .metrics import compare_models, evaluate_fidelity

__version__ = "1.0.0"

__all__ = [
    "NetShare", "NetShareConfig",
    "FlowTrace", "PacketTrace", "load_dataset",
    "evaluate_fidelity", "compare_models",
    "__version__",
]
