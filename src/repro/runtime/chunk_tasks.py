"""Stateless, picklable training/generation tasks for the executor layer.

Each task bundles *everything* a worker needs for one unit of work:
encoded tensors, the model config, an optional warm-start
``state_dict`` (the Insight-3 seed model), and the RNG seed.  Workers
never touch shared state, so a task computes the same result on any
backend — seeds are derived from the model config (e.g.
``cfg.seed + chunk_index``), never from scheduling order.

Two payload optimisations keep dispatch cheap:

* **Frozen states** — a ``state_dict`` re-pickled into every task
  would dominate fine-tune dispatch.  :func:`freeze_state` serialises
  it once per ``fit``/``generate`` call into a :class:`FrozenState`
  (content-hash keyed, instance-cached), so every task shares the one
  pre-pickled blob; workers :meth:`~FrozenState.thaw` through a
  per-process cache so N tasks in one worker deserialize once.
* **Shared-memory refs** — under the ``shm`` backend, encoded tensors
  and frozen blobs live in a :class:`~repro.runtime.shm.SharedArena`
  and tasks carry :class:`~repro.runtime.shm.ArrayRef` manifests;
  :func:`materialize_encoded` / :func:`thaw_state` attach zero-copy
  views on the worker side.

Results travel back as plain ``state_dict`` arrays plus the training
log (or, for generation tasks, as a decoded trace piece); the
orchestrator reconstructs live models with ``DoppelGANger.from_state``
/ ``RowGan`` + ``load_state_dict``.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.flow_encoder import EncodedFlows
from ..gan.doppelganger import DgConfig, DoppelGANger, TrainingLog
from ..privacy.dpsgd import DpSgdConfig
from ..telemetry.spans import span
from ..telemetry.state import STATE
from .shm import ArrayRef, SharedArena, SharedEncodedFlows, read_shared_bytes

if TYPE_CHECKING:  # runtime import would be circular (rowgan -> netshare
    # -> chunk_tasks); annotations are strings under future-annotations.
    from ..baselines.rowgan import ColumnSpec, RowGanConfig

__all__ = [
    "FrozenState",
    "freeze_state",
    "thaw_state",
    "materialize_encoded",
    "ChunkTask",
    "ChunkResult",
    "train_chunk",
    "GenerateTask",
    "GeneratePiece",
    "generate_chunk",
    "RowGanTask",
    "RowGanResult",
    "train_rowgan",
    "RowGanSampleTask",
    "sample_rowgan",
]

_CHUNK_MODES = ("fit", "fine_tune", "fit_dp")


# ----------------------------------------------------------------------
# Frozen state: serialize once per call, thaw once per worker process.

@dataclass(frozen=True)
class FrozenState:
    """A nested ``state_dict`` pre-pickled for cheap, shared dispatch.

    ``payload`` is either the pickled bytes themselves or an
    :class:`ArrayRef` to a uint8 shared-memory block holding them (the
    zero-copy path).  ``content_hash`` keys the per-process thaw cache
    and the freeze cache, so identical states — however many tasks,
    rounds, or calls reference them — are serialized and deserialized
    once per process.
    """

    content_hash: str
    payload: Union[bytes, ArrayRef]

    def thaw(self) -> Dict[str, Any]:
        return thaw_state(self)


# freeze: content-hash -> FrozenState (bytes payload), so repeated
# fit/generate calls over the same model reuse one blob instance.
_FREEZE_CACHE: Dict[str, FrozenState] = {}
# thaw: content-hash -> deserialized state, per process (workers are
# forked per map_tasks call; within one call this collapses N task
# deserializations into one).
_THAW_CACHE: Dict[str, Dict[str, Any]] = {}
_CACHE_LIMIT = 32


def _trim(cache: Dict[str, Any]) -> None:
    while len(cache) > _CACHE_LIMIT:
        cache.pop(next(iter(cache)))


def freeze_state(state: Optional[Dict[str, Any]],
                 arena: Optional[SharedArena] = None,
                 ) -> Optional[FrozenState]:
    """Serialize a nested state dict once; return the shared handle.

    With an ``arena``, the pickled blob is additionally staged in
    shared memory so dispatching the FrozenState costs a manifest, not
    the blob.  ``None`` passes through (no state to freeze).
    """
    if state is None:
        return None
    if isinstance(state, FrozenState):
        frozen = state
    else:
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        frozen = _FREEZE_CACHE.get(digest)
        if frozen is None:
            frozen = FrozenState(content_hash=digest, payload=payload)
            _FREEZE_CACHE[digest] = frozen
            _trim(_FREEZE_CACHE)
    if arena is not None and isinstance(frozen.payload, bytes):
        frozen = FrozenState(content_hash=frozen.content_hash,
                             payload=arena.share_bytes(frozen.payload))
    return frozen


def thaw_state(state: Union[None, Dict[str, Any], FrozenState]
               ) -> Optional[Dict[str, Any]]:
    """Return the plain nested dict behind any state representation."""
    if state is None or isinstance(state, dict):
        return state
    cached = _THAW_CACHE.get(state.content_hash)
    if cached is None:
        if STATE.enabled:
            STATE.registry.counter("runtime.thaw_cache.misses").inc()
        payload = state.payload
        if isinstance(payload, ArrayRef):
            payload = read_shared_bytes(payload)
        cached = pickle.loads(payload)
        _THAW_CACHE[state.content_hash] = cached
        _trim(_THAW_CACHE)
    elif STATE.enabled:
        STATE.registry.counter("runtime.thaw_cache.hits").inc()
    return cached


def materialize_encoded(
    encoded: Union[EncodedFlows, SharedEncodedFlows]) -> EncodedFlows:
    """Resolve a task's encoded payload to real tensors (zero-copy
    views when the payload is a shared-memory manifest)."""
    if isinstance(encoded, SharedEncodedFlows):
        return encoded.materialize()
    return encoded


def _materialize_rows(rows: Union[np.ndarray, ArrayRef]) -> np.ndarray:
    from .shm import attach_array

    if isinstance(rows, ArrayRef):
        return attach_array(rows)
    return rows


# ----------------------------------------------------------------------
# Chunk training tasks (NetShare's Insight-3 parallelism).

@dataclass
class ChunkTask:
    """One chunk of the time-sliced DoppelGANger training (Insight 3)."""

    chunk_index: int
    encoded: Union[EncodedFlows, SharedEncodedFlows]
    gan_config: DgConfig
    seed: int                     # model construction + training seed
    epochs: int
    mode: str = "fit"             # 'fit' | 'fine_tune' | 'fit_dp'
    init_state: Union[None, Dict[str, np.ndarray], FrozenState] = None
    dp_config: Optional[DpSgdConfig] = None

    def __post_init__(self):
        if self.mode not in _CHUNK_MODES:
            raise ValueError(f"mode must be one of {_CHUNK_MODES}")
        if self.mode == "fine_tune" and self.init_state is None:
            raise ValueError("fine_tune tasks need an init_state")
        if self.mode == "fit_dp" and self.dp_config is None:
            raise ValueError("fit_dp tasks need a dp_config")


@dataclass
class ChunkResult:
    """Trained weights + timing for one chunk, in task order."""

    chunk_index: int
    state: Dict[str, np.ndarray]
    log: TrainingLog
    train_seconds: float


def train_chunk(task: ChunkTask) -> ChunkResult:
    """Pure task function: build, (warm-start,) train, return weights.

    Module-level and side-effect-free so it pickles for any backend.
    """
    with span("train_chunk", chunk=task.chunk_index, mode=task.mode):
        encoded = materialize_encoded(task.encoded)
        init_state = thaw_state(task.init_state)
        model = DoppelGANger(task.gan_config, seed=task.seed)
        start = time.perf_counter()
        if task.mode == "fit_dp":
            if init_state is not None:
                model.load_state_dict(init_state)
            model.fit_dp(encoded, epochs=task.epochs,
                         dp_config=task.dp_config, seed=task.seed)
        elif task.mode == "fine_tune":
            model.load_state_dict(init_state)
            model.fine_tune(encoded, epochs=task.epochs)
        else:
            model.fit(encoded, epochs=task.epochs)
        elapsed = time.perf_counter() - start
    return ChunkResult(
        chunk_index=task.chunk_index,
        state=model.state_dict(),
        log=model.log,
        train_seconds=elapsed,
    )


# ----------------------------------------------------------------------
# Chunk generation tasks: NetShare.generate fans per-chunk sampling +
# decoding through the same executor as training.

@dataclass
class GenerateTask:
    """Sample ``n_flows`` from one trained chunk model and decode them.

    ``sample_seed`` drives the GAN's noise/Gumbel draws and
    ``decode_seed`` the decoder's bootstrap; both are derived by the
    orchestrator from ``(generate seed, retry round, chunk index)`` so
    every backend — and every retry round — produces bit-identical,
    non-repeating output.

    ``n_flows`` arrives pre-bucketed (:func:`repro.nn.tape.
    bucket_size` in ``NetShare.generate``): together with the
    content-hash model cache below — which keeps thawed models, and
    therefore their recorded inference tapes, alive across tasks in a
    worker — every task of a similar size replays the same warm
    forward-only tape instead of recording per request.
    """

    chunk_index: int
    gan_config: DgConfig
    model_state: Union[Dict[str, np.ndarray], FrozenState]
    encoder_state: Union[Dict[str, Any], FrozenState]
    window: Tuple[float, float]
    n_flows: int
    sample_seed: int
    decode_seed: int


@dataclass
class GeneratePiece:
    """One chunk's decoded contribution (or None when degenerate)."""

    chunk_index: int
    n_flows: int                 # flows requested from the model
    trace: Optional[Any]         # FlowTrace | PacketTrace | None
    sample_seconds: float

    def __len__(self) -> int:
        return 0 if self.trace is None else len(self.trace)


# Per-process caches keyed by frozen-state content hash: workers (and
# the serial backend) rebuild the decoder/model once, not per task.
_ENCODER_CACHE: Dict[str, Any] = {}
_MODEL_CACHE: Dict[str, DoppelGANger] = {}


def _resolve_encoder(encoder_state):
    from ..core.flow_encoder import FlowTensorEncoder

    if isinstance(encoder_state, FrozenState):
        cached = _ENCODER_CACHE.get(encoder_state.content_hash)
        if cached is None:
            if STATE.enabled:
                STATE.registry.counter("runtime.encoder_cache.misses").inc()
            cached = FlowTensorEncoder.from_state(encoder_state.thaw())
            _ENCODER_CACHE[encoder_state.content_hash] = cached
            _trim(_ENCODER_CACHE)
        elif STATE.enabled:
            STATE.registry.counter("runtime.encoder_cache.hits").inc()
        return cached
    return FlowTensorEncoder.from_state(encoder_state)


def _resolve_model(gan_config: DgConfig, model_state, seed: int
                   ) -> DoppelGANger:
    if isinstance(model_state, FrozenState):
        cached = _MODEL_CACHE.get(model_state.content_hash)
        if cached is None:
            if STATE.enabled:
                STATE.registry.counter("runtime.model_cache.misses").inc()
            cached = DoppelGANger.from_state(
                gan_config, model_state.thaw(), seed=seed)
            _MODEL_CACHE[model_state.content_hash] = cached
            _trim(_MODEL_CACHE)
        elif STATE.enabled:
            STATE.registry.counter("runtime.model_cache.hits").inc()
        return cached
    return DoppelGANger.from_state(gan_config, model_state, seed=seed)


def generate_chunk(task: GenerateTask) -> GeneratePiece:
    """Pure task function: sample one chunk's flows and decode them.

    Returns ``trace=None`` when the model emits no active timestep (a
    degenerate generator) — the orchestrator treats that as an empty
    contribution and retries with the next round's seeds.
    """
    start = time.perf_counter()
    with span("generate_chunk", chunk=task.chunk_index,
              n_flows=task.n_flows):
        model = _resolve_model(task.gan_config, task.model_state,
                               seed=task.sample_seed)
        encoded = model.generate(task.n_flows, seed=task.sample_seed)
        trace = None
        if np.any(encoded.gen_flags > 0.5):
            encoder = _resolve_encoder(task.encoder_state)
            piece = encoder.decode(
                encoded, task.window,
                rng=np.random.default_rng(task.decode_seed))
            if len(piece) > 0:
                trace = piece
    return GeneratePiece(
        chunk_index=task.chunk_index,
        n_flows=task.n_flows,
        trace=trace,
        sample_seconds=time.perf_counter() - start,
    )


# ----------------------------------------------------------------------
# Row-GAN tasks: the epoch-parallel baselines (E-WGAN-GP et al.) train
# one tabular model per measurement epoch; each epoch is one task so
# baseline comparisons share the exact same runtime as NetShare.

@dataclass
class RowGanTask:
    """Train one RowGan on one epoch's rows."""

    index: int
    columns: List[ColumnSpec]
    config: RowGanConfig
    seed: int
    rows: Union[np.ndarray, ArrayRef]
    epochs: int
    conditions: Optional[np.ndarray] = None


@dataclass
class RowGanResult:
    index: int
    state: Dict[str, np.ndarray]
    train_seconds: float


def train_rowgan(task: RowGanTask) -> RowGanResult:
    # Imported lazily: repro.baselines imports repro.core.netshare,
    # which imports this module — a top-level import would be circular.
    from ..baselines.rowgan import RowGan

    with span("train_rowgan", index=task.index):
        rows = _materialize_rows(task.rows)
        gan = RowGan(task.columns, task.config, seed=task.seed)
        gan.fit(rows, epochs=task.epochs, conditions=task.conditions)
    return RowGanResult(
        index=task.index,
        state=gan.state_dict(),
        train_seconds=gan.train_seconds,
    )


@dataclass
class RowGanSampleTask:
    """Draw ``n_rows`` from one trained RowGan (epoch-parallel sampling)."""

    index: int
    columns: List[ColumnSpec]
    config: RowGanConfig
    seed: int                     # model construction seed
    state: Union[Dict[str, np.ndarray], FrozenState]
    n_rows: int
    sample_seed: int


def sample_rowgan(task: RowGanSampleTask) -> np.ndarray:
    from ..baselines.rowgan import RowGan

    with span("sample_rowgan", index=task.index, n_rows=task.n_rows):
        gan = RowGan(task.columns, task.config, seed=task.seed)
        gan.load_state_dict(thaw_state(task.state))
        return gan.generate(task.n_rows, seed=task.sample_seed)
