"""Stateless, picklable training tasks for the executor layer.

Each task bundles *everything* a worker needs to train one model:
encoded tensors (numpy — pickle-friendly), the model config, an
optional warm-start ``state_dict`` (the Insight-3 seed model), and the
RNG seed.  Workers never touch shared state, so a task trains to the
same weights on any backend — the per-chunk seed is derived from the
NetShare config (``cfg.seed + chunk_index``), never from scheduling
order.

Results travel back as plain ``state_dict`` arrays plus the training
log; the orchestrator reconstructs live models with
``DoppelGANger.from_state`` / ``RowGan`` + ``load_state_dict``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.flow_encoder import EncodedFlows
from ..gan.doppelganger import DgConfig, DoppelGANger, TrainingLog
from ..privacy.dpsgd import DpSgdConfig

__all__ = [
    "ChunkTask",
    "ChunkResult",
    "train_chunk",
    "RowGanTask",
    "RowGanResult",
    "train_rowgan",
]

_CHUNK_MODES = ("fit", "fine_tune", "fit_dp")


@dataclass
class ChunkTask:
    """One chunk of the time-sliced DoppelGANger training (Insight 3)."""

    chunk_index: int
    encoded: EncodedFlows
    gan_config: DgConfig
    seed: int                     # model construction + training seed
    epochs: int
    mode: str = "fit"             # 'fit' | 'fine_tune' | 'fit_dp'
    init_state: Optional[Dict[str, np.ndarray]] = None
    dp_config: Optional[DpSgdConfig] = None

    def __post_init__(self):
        if self.mode not in _CHUNK_MODES:
            raise ValueError(f"mode must be one of {_CHUNK_MODES}")
        if self.mode == "fine_tune" and self.init_state is None:
            raise ValueError("fine_tune tasks need an init_state")
        if self.mode == "fit_dp" and self.dp_config is None:
            raise ValueError("fit_dp tasks need a dp_config")


@dataclass
class ChunkResult:
    """Trained weights + timing for one chunk, in task order."""

    chunk_index: int
    state: Dict[str, np.ndarray]
    log: TrainingLog
    train_seconds: float


def train_chunk(task: ChunkTask) -> ChunkResult:
    """Pure task function: build, (warm-start,) train, return weights.

    Module-level and side-effect-free so it pickles for any backend.
    """
    model = DoppelGANger(task.gan_config, seed=task.seed)
    start = time.perf_counter()
    if task.mode == "fit_dp":
        if task.init_state is not None:
            model.load_state_dict(task.init_state)
        model.fit_dp(task.encoded, epochs=task.epochs,
                     dp_config=task.dp_config, seed=task.seed)
    elif task.mode == "fine_tune":
        model.load_state_dict(task.init_state)
        model.fine_tune(task.encoded, epochs=task.epochs)
    else:
        model.fit(task.encoded, epochs=task.epochs)
    elapsed = time.perf_counter() - start
    return ChunkResult(
        chunk_index=task.chunk_index,
        state=model.state_dict(),
        log=model.log,
        train_seconds=elapsed,
    )


# ----------------------------------------------------------------------
# Row-GAN tasks: the epoch-parallel baselines (E-WGAN-GP et al.) train
# one tabular model per measurement epoch; each epoch is one task so
# baseline comparisons share the exact same runtime as NetShare.

@dataclass
class RowGanTask:
    """Train one RowGan on one epoch's rows."""

    index: int
    columns: List[Any]            # Sequence[ColumnSpec]
    config: Any                   # RowGanConfig
    seed: int
    rows: np.ndarray
    epochs: int
    conditions: Optional[np.ndarray] = None


@dataclass
class RowGanResult:
    index: int
    state: Dict[str, np.ndarray]
    train_seconds: float


def train_rowgan(task: RowGanTask) -> RowGanResult:
    # Imported lazily: repro.baselines imports repro.core.netshare,
    # which imports this module — a top-level import would be circular.
    from ..baselines.rowgan import RowGan

    gan = RowGan(task.columns, task.config, seed=task.seed)
    gan.fit(task.rows, epochs=task.epochs, conditions=task.conditions)
    return RowGanResult(
        index=task.index,
        state=gan.state_dict(),
        train_seconds=gan.train_seconds,
    )
