"""Serialization for the runtime: ``.npz`` persistence and the remote
task-manifest layer.

**Persistence** — a model's state is a nested dict whose leaves are
either numpy arrays (weights, quantile tables, embedding matrices) or
plain JSON-able values (config scalars, vocab lists, flags).
``save_state_npz`` flattens it into a single ``.npz``: array leaves
become npz entries keyed by their ``/``-joined path; everything else
is gathered into one JSON document stored under ``__meta__``.
``load_state_npz`` reverses the mapping exactly.  Keys must not
contain ``/`` (the path separator); parameter names use ``.`` so this
never collides in practice.

**Task manifests** — the remote executor cannot ship
:class:`~repro.runtime.shm.ArrayRef`/:class:`~repro.runtime.
chunk_tasks.FrozenState` handles to another machine (shared-memory
names are host-local), so :func:`pack_tasks` rewrites each task into a
wire shape: every bulk payload becomes a content-hash-keyed
:class:`BlobManifest` (wrapped in :class:`ArrayManifest` /
:class:`StateManifest` / :class:`EncodedManifest` so the receiver
knows which runtime type to rebuild) and the blob bytes travel in a
side table, deduplicated by hash — N tasks referencing one model
state produce one blob.  On the worker host, :func:`unpack_task`
resolves each manifest against the host's own ``SharedArena`` and
rebuilds the task in exactly the ``shm``-backend shape
(``ArrayRef``/``FrozenState``/``SharedEncodedFlows``), so the existing
task functions, thaw caches, and local worker pools run unchanged —
which is what keeps remote output bit-identical to serial.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, is_dataclass, replace
from typing import Any, Callable, Dict, List, Sequence, Set, Tuple

import numpy as np

from ..core.flow_encoder import EncodedFlows
from .chunk_tasks import FrozenState
from .shm import ArrayRef, SharedEncodedFlows, attach_array

__all__ = ["flatten_state", "unflatten_state", "save_state_npz",
           "load_state_npz", "BlobManifest", "ArrayManifest",
           "StateManifest", "EncodedManifest", "pack_tasks",
           "unpack_task", "manifest_hashes"]

_META_KEY = "__meta__"
_SEP = "/"


def flatten_state(state: Dict[str, Any]):
    """Split a nested dict into (flat array dict, nested JSON-able meta)."""
    arrays: Dict[str, np.ndarray] = {}
    meta: Dict[str, Any] = {}

    def walk(node: Dict[str, Any], path: str, meta_node: Dict[str, Any]):
        for key, value in node.items():
            key = str(key)
            if _SEP in key:
                raise ValueError(f"state key {key!r} contains {_SEP!r}")
            full = f"{path}{_SEP}{key}" if path else key
            if isinstance(value, dict):
                child: Dict[str, Any] = {}
                meta_node[key] = child
                walk(value, full, child)
            elif isinstance(value, np.ndarray):
                arrays[full] = value
            else:
                meta_node[key] = _jsonable(value, full)
    walk(state, "", meta)
    return arrays, meta


def _jsonable(value: Any, path: str) -> Any:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, tuple):
        value = list(value)
    if isinstance(value, list):
        return [_jsonable(v, path) for v in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(
        f"state leaf {path!r} of type {type(value).__name__} is neither "
        "a numpy array nor JSON-able")


def unflatten_state(arrays: Dict[str, np.ndarray],
                    meta: Dict[str, Any]) -> Dict[str, Any]:
    """Rebuild the nested state dict from flat arrays + meta tree."""
    state = json.loads(json.dumps(meta))  # deep copy, plain types
    for full, value in arrays.items():
        node = state
        parts = full.split(_SEP)
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = value
    return state


def save_state_npz(path, state: Dict[str, Any]) -> None:
    """Persist a nested state dict to a single compressed ``.npz``."""
    arrays, meta = flatten_state(state)
    if _META_KEY in arrays:
        raise ValueError(f"{_META_KEY!r} is a reserved key")
    np.savez_compressed(
        path, **arrays, **{_META_KEY: np.array(json.dumps(meta))})


def load_state_npz(path) -> Dict[str, Any]:
    """Load a state dict written by :func:`save_state_npz`."""
    with np.load(path, allow_pickle=False) as payload:
        if _META_KEY not in payload.files:
            raise ValueError(f"{path} is not a repro state file "
                             f"(missing {_META_KEY!r})")
        meta = json.loads(str(payload[_META_KEY]))
        arrays = {name: payload[name] for name in payload.files
                  if name != _META_KEY}
    return unflatten_state(arrays, meta)


# ---------------------------------------------------------------------------
# Remote task manifests: the wire shape of a task's bulk payloads.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BlobManifest:
    """Content-addressed descriptor of one bulk payload.

    ``content_hash`` keys the per-host dedup ledger (a blob crosses
    the wire at most once per host per content) and the host's blob
    store; shape/dtype let the receiver rebuild the typed view without
    any task context.  All fields are hash-stable primitives so the
    manifest itself pickles into a few dozen bytes.
    """

    content_hash: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize
                   * int(np.prod(self.shape, dtype=np.int64)))


@dataclass(frozen=True)
class ArrayManifest:
    """Wire replacement for an :class:`ArrayRef` task field."""

    blob: BlobManifest


@dataclass(frozen=True)
class StateManifest:
    """Wire replacement for a :class:`FrozenState` task field (the
    blob holds the pickled state bytes; its hash *is* the frozen
    state's content hash, so worker-side thaw caches stay warm)."""

    blob: BlobManifest


@dataclass(frozen=True)
class EncodedManifest:
    """Wire replacement for a ``SharedEncodedFlows``/``EncodedFlows``
    task field: three typed blobs, one per tensor."""

    metadata: BlobManifest
    measurements: BlobManifest
    gen_flags: BlobManifest


def _hash_array(array: np.ndarray) -> str:
    digest = hashlib.sha256()
    digest.update(array.dtype.str.encode("ascii"))
    digest.update(repr(tuple(array.shape)).encode("ascii"))
    digest.update(np.ascontiguousarray(array).data)
    return digest.hexdigest()


def _blob_for(array: np.ndarray, blobs: Dict[str, np.ndarray],
              content_hash: "str | None" = None) -> BlobManifest:
    array = np.ascontiguousarray(array)
    digest = content_hash if content_hash is not None else _hash_array(array)
    blobs.setdefault(digest, array)
    return BlobManifest(content_hash=digest, shape=tuple(array.shape),
                        dtype=array.dtype.str)


def _pack_value(value: Any, blobs: Dict[str, np.ndarray],
                memo: Dict[int, Any]) -> Any:
    packed = memo.get(id(value))
    if packed is not None:
        return packed
    if isinstance(value, FrozenState):
        payload = value.payload
        if isinstance(payload, ArrayRef):
            data = attach_array(payload)
        else:
            data = np.frombuffer(payload, dtype=np.uint8)
        packed = StateManifest(blob=_blob_for(
            data, blobs, content_hash=value.content_hash))
    elif isinstance(value, ArrayRef):
        packed = ArrayManifest(blob=_blob_for(attach_array(value), blobs))
    elif isinstance(value, (SharedEncodedFlows, EncodedFlows)):
        encoded = (value.materialize()
                   if isinstance(value, SharedEncodedFlows) else value)
        packed = EncodedManifest(
            metadata=_blob_for(encoded.metadata, blobs),
            measurements=_blob_for(encoded.measurements, blobs),
            gen_flags=_blob_for(encoded.gen_flags, blobs),
        )
    elif is_dataclass(value) and not isinstance(value, type):
        changed = {}
        for field_info in fields(value):
            old = getattr(value, field_info.name)
            new = _pack_value(old, blobs, memo)
            if new is not old:
                changed[field_info.name] = new
        packed = replace(value, **changed) if changed else value
    elif isinstance(value, dict):
        items = {k: _pack_value(v, blobs, memo) for k, v in value.items()}
        packed = (items if any(items[k] is not value[k] for k in items)
                  else value)
    elif isinstance(value, (list, tuple)):
        items = [_pack_value(v, blobs, memo) for v in value]
        packed = (type(value)(items)
                  if any(a is not b for a, b in zip(items, value))
                  else value)
    else:
        return value
    memo[id(value)] = packed
    return packed


def pack_tasks(tasks: Sequence[Any]
               ) -> Tuple[List[Any], Dict[str, np.ndarray]]:
    """Rewrite tasks into wire shape; return ``(packed, blob table)``.

    The blob table maps content hash to the typed array holding the
    payload bytes.  Values staged in a ``SharedArena`` are returned as
    zero-copy views, so the table stays valid only while the arena is
    open — which holds for the remote executor's use (packing and
    shipping both happen inside the caller's ``map_tasks`` window).
    A ``FrozenState``/``ArrayRef`` instance shared by many tasks is
    hashed and tabled once (identity-memoized within a call).
    """
    blobs: Dict[str, np.ndarray] = {}
    memo: Dict[int, Any] = {}
    return [_pack_value(task, blobs, memo) for task in tasks], blobs


def manifest_hashes(packed_task: Any) -> Set[str]:
    """Every blob hash a packed task references (dispatch dedup and
    the host-side availability check both walk this)."""
    needed: Set[str] = set()

    def walk(value: Any) -> None:
        if isinstance(value, BlobManifest):
            needed.add(value.content_hash)
        elif is_dataclass(value) and not isinstance(value, type):
            for field_info in fields(value):
                walk(getattr(value, field_info.name))
        elif isinstance(value, dict):
            for item in value.values():
                walk(item)
        elif isinstance(value, (list, tuple)):
            for item in value:
                walk(item)

    walk(packed_task)
    return needed


def unpack_task(packed_task: Any,
                resolve: Callable[[BlobManifest], ArrayRef]) -> Any:
    """Rebuild a packed task in the ``shm``-backend shape.

    ``resolve`` maps a :class:`BlobManifest` to a host-local
    :class:`ArrayRef` (the worker host's blob store).  Manifests become
    exactly the types the task functions already accept — ``ArrayRef``,
    ``FrozenState`` with a shared-memory payload, and
    ``SharedEncodedFlows`` — so local fan-out and the per-process
    thaw/model caches work unchanged on the remote host.
    """

    def walk(value: Any) -> Any:
        if isinstance(value, ArrayManifest):
            return resolve(value.blob)
        if isinstance(value, StateManifest):
            return FrozenState(content_hash=value.blob.content_hash,
                               payload=resolve(value.blob))
        if isinstance(value, EncodedManifest):
            return SharedEncodedFlows(
                metadata=resolve(value.metadata),
                measurements=resolve(value.measurements),
                gen_flags=resolve(value.gen_flags),
            )
        if is_dataclass(value) and not isinstance(value, type):
            changed = {}
            for field_info in fields(value):
                old = getattr(value, field_info.name)
                new = walk(old)
                if new is not old:
                    changed[field_info.name] = new
            return replace(value, **changed) if changed else value
        if isinstance(value, dict):
            return {k: walk(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return type(value)(walk(v) for v in value)
        return value

    return walk(packed_task)
