"""Flat ``.npz`` persistence for nested state dictionaries.

A model's state is a nested dict whose leaves are either numpy arrays
(weights, quantile tables, embedding matrices) or plain JSON-able
values (config scalars, vocab lists, flags).  ``save_state_npz``
flattens it into a single ``.npz``: array leaves become npz entries
keyed by their ``/``-joined path; everything else is gathered into one
JSON document stored under ``__meta__``.  ``load_state_npz`` reverses
the mapping exactly.

Keys must not contain ``/`` (the path separator); parameter names use
``.`` so this never collides in practice.
"""

from __future__ import annotations

import json
from typing import Any, Dict

import numpy as np

__all__ = ["flatten_state", "unflatten_state", "save_state_npz",
           "load_state_npz"]

_META_KEY = "__meta__"
_SEP = "/"


def flatten_state(state: Dict[str, Any]):
    """Split a nested dict into (flat array dict, nested JSON-able meta)."""
    arrays: Dict[str, np.ndarray] = {}
    meta: Dict[str, Any] = {}

    def walk(node: Dict[str, Any], path: str, meta_node: Dict[str, Any]):
        for key, value in node.items():
            key = str(key)
            if _SEP in key:
                raise ValueError(f"state key {key!r} contains {_SEP!r}")
            full = f"{path}{_SEP}{key}" if path else key
            if isinstance(value, dict):
                child: Dict[str, Any] = {}
                meta_node[key] = child
                walk(value, full, child)
            elif isinstance(value, np.ndarray):
                arrays[full] = value
            else:
                meta_node[key] = _jsonable(value, full)
    walk(state, "", meta)
    return arrays, meta


def _jsonable(value: Any, path: str) -> Any:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, tuple):
        value = list(value)
    if isinstance(value, list):
        return [_jsonable(v, path) for v in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(
        f"state leaf {path!r} of type {type(value).__name__} is neither "
        "a numpy array nor JSON-able")


def unflatten_state(arrays: Dict[str, np.ndarray],
                    meta: Dict[str, Any]) -> Dict[str, Any]:
    """Rebuild the nested state dict from flat arrays + meta tree."""
    state = json.loads(json.dumps(meta))  # deep copy, plain types
    for full, value in arrays.items():
        node = state
        parts = full.split(_SEP)
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = value
    return state


def save_state_npz(path, state: Dict[str, Any]) -> None:
    """Persist a nested state dict to a single compressed ``.npz``."""
    arrays, meta = flatten_state(state)
    if _META_KEY in arrays:
        raise ValueError(f"{_META_KEY!r} is a reserved key")
    np.savez_compressed(
        path, **arrays, **{_META_KEY: np.array(json.dumps(meta))})


def load_state_npz(path) -> Dict[str, Any]:
    """Load a state dict written by :func:`save_state_npz`."""
    with np.load(path, allow_pickle=False) as payload:
        if _META_KEY not in payload.files:
            raise ValueError(f"{path} is not a repro state file "
                             f"(missing {_META_KEY!r})")
        meta = json.loads(str(payload[_META_KEY]))
        arrays = {name: payload[name] for name in payload.files
                  if name != _META_KEY}
    return unflatten_state(arrays, meta)
