"""repro.runtime: the parallel chunk-training runtime.

Training work across the codebase — NetShare's per-chunk fine-tuning
(Insight 3) and the epoch-parallel tabular baselines — is expressed as
stateless, picklable tasks mapped through one ``Executor.map_tasks()``
interface with interchangeable ``serial`` and ``multiprocessing``
backends.  See :mod:`repro.runtime.executor` for the determinism
contract and :mod:`repro.runtime.chunk_tasks` for the task functions.
"""

from .executor import (
    JOBS_ENV_VAR,
    Executor,
    MultiprocessingExecutor,
    SerialExecutor,
    get_executor,
    resolve_jobs,
)
from .chunk_tasks import (
    ChunkResult,
    ChunkTask,
    RowGanResult,
    RowGanTask,
    train_chunk,
    train_rowgan,
)
from .serialization import (
    flatten_state,
    load_state_npz,
    save_state_npz,
    unflatten_state,
)

__all__ = [
    "JOBS_ENV_VAR",
    "Executor",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "get_executor",
    "resolve_jobs",
    "ChunkTask",
    "ChunkResult",
    "RowGanTask",
    "RowGanResult",
    "train_chunk",
    "train_rowgan",
    "flatten_state",
    "unflatten_state",
    "save_state_npz",
    "load_state_npz",
]
