"""repro.runtime: the parallel chunk-training and generation runtime.

Work across the codebase — NetShare's per-chunk fine-tuning
(Insight 3), per-chunk synthesis in ``NetShare.generate``, and the
epoch-parallel tabular baselines — is expressed as stateless,
picklable tasks mapped through one ``Executor.map_tasks()`` interface
with interchangeable ``serial``, ``multiprocessing``, ``shm``, and
``remote`` backends.  The ``shm`` backend feeds workers through the
zero-copy shared-memory data plane in :mod:`repro.runtime.shm`: bulk
tensors and frozen model states live in a
:class:`~repro.runtime.shm.SharedArena` and tasks carry only tiny
manifests.  The ``remote`` backend (:mod:`repro.runtime.remote`)
extends the same manifest idea across machines: a coordinator ships
content-hash-deduplicated blobs to long-lived worker hosts
(``python -m repro.runtime.remote_worker``) over length-prefixed
socket frames.  See :mod:`repro.runtime.executor` for the determinism
contract and :mod:`repro.runtime.chunk_tasks` for the task functions.

The remote coordinator/host classes import lazily (``from
repro.runtime import remote``) so the single-machine path never loads
the socket layer.
"""

from .executor import (
    BACKEND_ENV_VAR,
    BACKENDS,
    JOBS_ENV_VAR,
    MEASURE_DISPATCH_ENV_VAR,
    Executor,
    MultiprocessingExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
    get_executor,
    register_backend,
    resolve_backend,
    resolve_jobs,
)
from .chunk_tasks import (
    ChunkResult,
    ChunkTask,
    FrozenState,
    GeneratePiece,
    GenerateTask,
    RowGanResult,
    RowGanSampleTask,
    RowGanTask,
    freeze_state,
    generate_chunk,
    materialize_encoded,
    sample_rowgan,
    thaw_state,
    train_chunk,
    train_rowgan,
)
from .serialization import (
    ArrayManifest,
    BlobManifest,
    EncodedManifest,
    StateManifest,
    flatten_state,
    load_state_npz,
    manifest_hashes,
    pack_tasks,
    save_state_npz,
    unflatten_state,
    unpack_task,
)
from .shm import (
    ArrayRef,
    SharedArena,
    SharedEncodedFlows,
    attach_array,
    block_exists,
    detach_all,
    maybe_arena,
    read_shared_bytes,
)

__all__ = [
    "JOBS_ENV_VAR",
    "BACKEND_ENV_VAR",
    "MEASURE_DISPATCH_ENV_VAR",
    "BACKENDS",
    "Executor",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "SharedMemoryExecutor",
    "get_executor",
    "register_backend",
    "resolve_jobs",
    "resolve_backend",
    "ChunkTask",
    "ChunkResult",
    "GenerateTask",
    "GeneratePiece",
    "RowGanTask",
    "RowGanResult",
    "RowGanSampleTask",
    "FrozenState",
    "freeze_state",
    "thaw_state",
    "materialize_encoded",
    "train_chunk",
    "generate_chunk",
    "train_rowgan",
    "sample_rowgan",
    "flatten_state",
    "unflatten_state",
    "save_state_npz",
    "load_state_npz",
    "BlobManifest",
    "ArrayManifest",
    "StateManifest",
    "EncodedManifest",
    "pack_tasks",
    "unpack_task",
    "manifest_hashes",
    "ArrayRef",
    "SharedArena",
    "SharedEncodedFlows",
    "attach_array",
    "read_shared_bytes",
    "block_exists",
    "detach_all",
    "maybe_arena",
]
