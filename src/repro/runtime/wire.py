"""Length-prefixed socket framing for the remote executor.

The coordinator and the worker hosts speak a binary frame protocol in
the same spirit as :mod:`repro.serve.protocol`'s line-delimited JSON,
but carrying pickled python objects (task dataclasses, numpy blobs)
instead of JSON documents: each frame is an 8-byte big-endian payload
length followed by exactly that many pickle bytes.  ``recv_frame``
distinguishes a *clean* EOF (peer closed between frames — ``None``)
from a *torn* one (connection died mid-frame — ``FrameError``), which
is what lets the coordinator treat host death precisely.

Security model: frames are unpickled, so this protocol is for
**trusted worker hosts on a private network or loopback** — exactly
like the pipe protocol it generalizes, which pickles into worker
process pipes.  It must never be exposed to untrusted peers.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Optional, Tuple

__all__ = ["FrameError", "send_frame", "recv_frame", "MAX_FRAME_BYTES"]

#: Upper bound on one frame's payload: a desynchronized or hostile
#: stream must not make us allocate an arbitrary buffer.  Generous
#: enough for a full model-state blob at production scale.
MAX_FRAME_BYTES = 1 << 32

_HEADER = struct.Struct(">Q")


class FrameError(ConnectionError):
    """The stream ended or desynchronized mid-frame."""


def send_frame(sock, obj: Any) -> int:
    """Pickle ``obj`` and write one length-prefixed frame.

    Returns the payload byte count (the number the dispatch-byte
    telemetry records).  Raises ``OSError``/``BrokenPipeError`` when
    the peer is gone — callers translate that into their fault model.
    """
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES")
    sock.sendall(_HEADER.pack(len(payload)) + payload)
    return len(payload)


def _recv_exact(sock, n: int) -> Tuple[bytes, bool]:
    """Read exactly ``n`` bytes; returns ``(data, clean)`` where a
    short read reports whether *zero* bytes arrived (clean EOF)."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            return b"".join(chunks), not chunks
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks), False


def recv_frame(sock) -> Optional[Any]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`FrameError` on a torn frame or an implausible
    header, ``OSError`` (including ``socket.timeout``) on transport
    failure — both mean the peer is unusable.
    """
    header, clean = _recv_exact(sock, _HEADER.size)
    if len(header) < _HEADER.size:
        if clean:
            return None
        raise FrameError("connection closed mid-header")
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame header claims {length} bytes (> MAX_FRAME_BYTES); "
            "stream desynchronized")
    payload, _ = _recv_exact(sock, length)
    if len(payload) < length:
        raise FrameError("connection closed mid-frame")
    return pickle.loads(payload)
