"""Pluggable task executors for embarrassingly-parallel training.

NetShare's headline scalability result (Insight 3, Fig 4) is that
per-chunk fine-tuning from a shared seed model is embarrassingly
parallel.  This module is the runtime that makes that real: training
work is expressed as stateless, picklable task objects mapped through
one ``Executor.map_tasks()`` interface, with three interchangeable
backends:

* :class:`SerialExecutor` — in-process loop (the default; also the
  reference semantics every other backend must reproduce bit-exactly);
* :class:`MultiprocessingExecutor` — a ``multiprocessing.Pool`` fan-out
  across worker processes (tasks pickled into the worker pipe);
* :class:`SharedMemoryExecutor` — the same fan-out, but it announces
  ``uses_shared_memory`` so callers move bulk tensors into a
  :class:`~repro.runtime.shm.SharedArena` and dispatch only tiny
  manifests through the pipe (the zero-copy data plane).

Determinism contract: a task carries every RNG seed it needs (derived
from the model config, never from scheduling order), so backends only
change *where* a task runs — results are bit-identical across
backends and across ``jobs`` settings.

Backend selection: ``get_executor(jobs, backend)``; a ``jobs`` of
``None`` falls back to the ``REPRO_JOBS`` environment variable, then
to 1 (serial), and ``jobs=0`` means "one worker per CPU".  A
``backend`` of ``None`` falls back to ``REPRO_BACKEND``, then to
serial/multiprocessing chosen by the job count.

Dispatch instrumentation: when ``REPRO_MEASURE_DISPATCH`` is set (the
perf benchmark harness does this), every ``map_tasks`` call records
the pickled size of its task list on ``dispatch_bytes`` /
``dispatch_tasks`` — the number the zero-copy plane exists to shrink.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from abc import ABC, abstractmethod
from typing import Any, Callable, List, Optional, Sequence

__all__ = [
    "Executor",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "SharedMemoryExecutor",
    "resolve_jobs",
    "resolve_backend",
    "get_executor",
    "JOBS_ENV_VAR",
    "BACKEND_ENV_VAR",
    "MEASURE_DISPATCH_ENV_VAR",
    "BACKENDS",
]

#: Environment variable consulted when no explicit job count is given.
JOBS_ENV_VAR = "REPRO_JOBS"
#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV_VAR = "REPRO_BACKEND"
#: When set (to anything non-empty), executors record dispatch payload
#: sizes — used by the perf benchmark harness.
MEASURE_DISPATCH_ENV_VAR = "REPRO_MEASURE_DISPATCH"

#: Recognised backend names, in the order the docs present them.
BACKENDS = ("serial", "multiprocessing", "shm")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit value > ``REPRO_JOBS`` > 1.

    ``0`` (from either source) expands to ``os.cpu_count()``.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV_VAR}={raw!r} is not an integer") from None
        else:
            jobs = 1
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = one worker per CPU)")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return jobs


def resolve_backend(backend: Optional[str] = None) -> Optional[str]:
    """Resolve a backend name: explicit value > ``REPRO_BACKEND`` > None
    (None = pick serial/multiprocessing from the job count)."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR, "").strip() or None
    if backend is None:
        return None
    backend = str(backend).lower()
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return backend


class Executor(ABC):
    """Maps a task function over a sequence of task objects.

    Results are returned in task order regardless of completion order,
    so callers can zip tasks with results.
    """

    #: Human-readable backend name (surfaced in NetShare diagnostics).
    name: str = "base"
    #: Number of concurrent workers this executor may use.
    jobs: int = 1
    #: True when callers should move bulk payloads into a SharedArena
    #: and dispatch manifests instead of tensors.
    uses_shared_memory: bool = False

    def __init__(self):
        #: Cumulative pickled task-payload bytes (only populated while
        #: REPRO_MEASURE_DISPATCH is set; None otherwise).
        self.dispatch_bytes: Optional[int] = None
        self.dispatch_tasks: int = 0

    @abstractmethod
    def map_tasks(self, fn: Callable[[Any], Any],
                  tasks: Sequence[Any]) -> List[Any]:
        """Run ``fn`` on every task; return results in task order."""

    def _record_dispatch(self, tasks: Sequence[Any]) -> None:
        if not os.environ.get(MEASURE_DISPATCH_ENV_VAR, "").strip():
            return
        size = sum(
            len(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))
            for task in tasks
        )
        self.dispatch_bytes = (self.dispatch_bytes or 0) + size
        self.dispatch_tasks += len(tasks)


class SerialExecutor(Executor):
    """In-process reference backend: a plain loop."""

    name = "serial"
    jobs = 1

    def map_tasks(self, fn, tasks):
        tasks = list(tasks)
        self._record_dispatch(tasks)
        return [fn(task) for task in tasks]


class MultiprocessingExecutor(Executor):
    """Fan tasks out across a ``multiprocessing.Pool``.

    The task function must be a module-level callable and every task
    picklable.  Single-task (or single-worker) calls run in-process to
    avoid pool startup cost — results are identical either way by the
    determinism contract.
    """

    name = "multiprocessing"

    def __init__(self, jobs: Optional[int] = None):
        super().__init__()
        self.jobs = resolve_jobs(jobs if jobs is not None else 0)

    def _context(self):
        # fork is cheapest where available (Linux); spawn elsewhere.
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")

    def map_tasks(self, fn, tasks):
        tasks = list(tasks)
        if not tasks:
            return []
        self._record_dispatch(tasks)
        workers = min(self.jobs, len(tasks))
        if workers <= 1:
            return [fn(task) for task in tasks]
        with self._context().Pool(processes=workers) as pool:
            return pool.map(fn, tasks, chunksize=1)


class SharedMemoryExecutor(MultiprocessingExecutor):
    """Multiprocessing fan-out fed through the zero-copy data plane.

    The executor itself schedules exactly like its parent; the
    difference is the ``uses_shared_memory`` flag, which tells callers
    (``NetShare.fit``/``generate``, ``EWganGp.fit``) to stage encoded
    tensors and frozen states in a :class:`~repro.runtime.shm.SharedArena`
    so each dispatched task is a few hundred bytes of manifest instead
    of megabytes of pickled tensor.
    """

    name = "shm"
    uses_shared_memory = True


_BACKEND_CLASSES = {
    "serial": SerialExecutor,
    "multiprocessing": MultiprocessingExecutor,
    "shm": SharedMemoryExecutor,
}


def get_executor(jobs: Optional[int] = None,
                 backend: Optional[str] = None) -> Executor:
    """Build the executor for a job count and optional backend name
    (see :func:`resolve_jobs` / :func:`resolve_backend`)."""
    resolved = resolve_jobs(jobs)
    chosen = resolve_backend(backend)
    if chosen is None:
        chosen = "serial" if resolved <= 1 else "multiprocessing"
    cls = _BACKEND_CLASSES[chosen]
    if cls is SerialExecutor:
        return SerialExecutor()
    return cls(resolved)
