"""Pluggable task executors for embarrassingly-parallel training.

NetShare's headline scalability result (Insight 3, Fig 4) is that
per-chunk fine-tuning from a shared seed model is embarrassingly
parallel.  This module is the runtime that makes that real: training
work is expressed as stateless, picklable task objects mapped through
one ``Executor.map_tasks()`` interface, with two interchangeable
backends:

* :class:`SerialExecutor` — in-process loop (the default; also the
  reference semantics every other backend must reproduce bit-exactly);
* :class:`MultiprocessingExecutor` — a ``multiprocessing.Pool`` fan-out
  across worker processes.

Determinism contract: a task carries every RNG seed it needs (derived
from the model config, never from scheduling order), so backends only
change *where* a task runs — results are bit-identical across
backends and across ``jobs`` settings.

Backend selection: ``get_executor(jobs)``; a ``jobs`` of ``None``
falls back to the ``REPRO_JOBS`` environment variable, then to 1
(serial).  ``jobs=0`` means "one worker per CPU".
"""

from __future__ import annotations

import multiprocessing
import os
from abc import ABC, abstractmethod
from typing import Any, Callable, List, Optional, Sequence

__all__ = [
    "Executor",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "resolve_jobs",
    "get_executor",
    "JOBS_ENV_VAR",
]

#: Environment variable consulted when no explicit job count is given.
JOBS_ENV_VAR = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit value > ``REPRO_JOBS`` > 1.

    ``0`` (from either source) expands to ``os.cpu_count()``.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV_VAR}={raw!r} is not an integer") from None
        else:
            jobs = 1
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = one worker per CPU)")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return jobs


class Executor(ABC):
    """Maps a task function over a sequence of task objects.

    Results are returned in task order regardless of completion order,
    so callers can zip tasks with results.
    """

    #: Human-readable backend name (surfaced in NetShare diagnostics).
    name: str = "base"
    #: Number of concurrent workers this executor may use.
    jobs: int = 1

    @abstractmethod
    def map_tasks(self, fn: Callable[[Any], Any],
                  tasks: Sequence[Any]) -> List[Any]:
        """Run ``fn`` on every task; return results in task order."""


class SerialExecutor(Executor):
    """In-process reference backend: a plain loop."""

    name = "serial"
    jobs = 1

    def map_tasks(self, fn, tasks):
        return [fn(task) for task in tasks]


class MultiprocessingExecutor(Executor):
    """Fan tasks out across a ``multiprocessing.Pool``.

    The task function must be a module-level callable and every task
    picklable.  Single-task (or single-worker) calls run in-process to
    avoid pool startup cost — results are identical either way by the
    determinism contract.
    """

    name = "multiprocessing"

    def __init__(self, jobs: Optional[int] = None):
        self.jobs = resolve_jobs(jobs if jobs is not None else 0)

    def _context(self):
        # fork is cheapest where available (Linux); spawn elsewhere.
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")

    def map_tasks(self, fn, tasks):
        tasks = list(tasks)
        if not tasks:
            return []
        workers = min(self.jobs, len(tasks))
        if workers <= 1:
            return [fn(task) for task in tasks]
        with self._context().Pool(processes=workers) as pool:
            return pool.map(fn, tasks, chunksize=1)


def get_executor(jobs: Optional[int] = None) -> Executor:
    """Build the executor for a job count (see :func:`resolve_jobs`)."""
    resolved = resolve_jobs(jobs)
    if resolved <= 1:
        return SerialExecutor()
    return MultiprocessingExecutor(resolved)
