"""Pluggable task executors for embarrassingly-parallel training.

NetShare's headline scalability result (Insight 3, Fig 4) is that
per-chunk fine-tuning from a shared seed model is embarrassingly
parallel.  This module is the runtime that makes that real: training
work is expressed as stateless, picklable task objects mapped through
one ``Executor.map_tasks()`` interface, with three interchangeable
backends:

* :class:`SerialExecutor` — in-process loop (the default; also the
  reference semantics every other backend must reproduce bit-exactly);
* :class:`MultiprocessingExecutor` — a persistent pipe-based worker
  pool reused across ``map_tasks`` calls (tasks pickled into each
  worker's pipe), with dead workers respawned and their tasks retried;
* :class:`SharedMemoryExecutor` — the same pool, but it announces
  ``uses_shared_memory`` so callers move bulk tensors into a
  :class:`~repro.runtime.shm.SharedArena` and dispatch only tiny
  manifests through the pipe (the zero-copy data plane).

The pool persists for the lifetime of the executor — per-process
caches in :mod:`repro.runtime.chunk_tasks` (frozen-state thaw cache,
generate-side model/encoder caches) survive from one ``map_tasks``
call to the next, which is what makes ``generate``'s top-up rounds
cheap.  Executors are context managers; ``close()`` (or ``with``)
shuts the pool down, and a ``weakref.finalize`` backstop reaps workers
if an executor is dropped without closing.

Determinism contract: a task carries every RNG seed it needs (derived
from the model config, never from scheduling order), so backends only
change *where* a task runs — results are bit-identical across
backends and across ``jobs`` settings.  Telemetry likewise never
feeds an RNG: outputs are bit-identical with telemetry on or off.

Backend selection: ``get_executor(jobs, backend)``; a ``jobs`` of
``None`` falls back to the ``REPRO_JOBS`` environment variable, then
to 1 (serial), and ``jobs=0`` means "one worker per CPU".  A
``backend`` of ``None`` falls back to ``REPRO_BACKEND``, then to
serial/multiprocessing chosen by the job count.

Dispatch instrumentation: when ``REPRO_MEASURE_DISPATCH`` is set (the
perf benchmark harness does this), every ``map_tasks`` call records
the pickled size of its task list on ``dispatch_bytes`` /
``dispatch_tasks`` — the number the zero-copy plane exists to shrink.
Independently, while :mod:`repro.telemetry` is enabled the pool counts
the actual bytes written to worker pipes (``runtime.dispatch_bytes``)
and times every task (``runtime.task_seconds``), and each worker ships
its span buffer and metric deltas back inside the result envelope so
the orchestrator can splice one trace tree per run.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
import weakref
from abc import ABC, abstractmethod
from collections import deque
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..telemetry.spans import set_task, span
from ..telemetry.state import STATE

__all__ = [
    "Executor",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "SharedMemoryExecutor",
    "resolve_jobs",
    "resolve_backend",
    "get_executor",
    "register_backend",
    "JOBS_ENV_VAR",
    "BACKEND_ENV_VAR",
    "MEASURE_DISPATCH_ENV_VAR",
    "BACKENDS",
    "MAX_TASK_ATTEMPTS",
]

#: Environment variable consulted when no explicit job count is given.
JOBS_ENV_VAR = "REPRO_JOBS"
#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV_VAR = "REPRO_BACKEND"
#: When set (to anything non-empty), executors record dispatch payload
#: sizes — used by the perf benchmark harness.
MEASURE_DISPATCH_ENV_VAR = "REPRO_MEASURE_DISPATCH"

#: Recognised backend names, in the order the docs present them.
#: ``remote`` fans tasks out to socket-connected worker hosts (see
#: :mod:`repro.runtime.remote`); its factory registers lazily so the
#: single-machine path never imports the socket layer.
BACKENDS = ("serial", "multiprocessing", "shm", "remote")

#: How many times one task may be dispatched before a dying worker is
#: treated as the task's fault and the run fails.
MAX_TASK_ATTEMPTS = 3


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit value > ``REPRO_JOBS`` > 1.

    ``0`` (from either source) expands to ``os.cpu_count()``.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV_VAR}={raw!r} is not an integer") from None
        else:
            jobs = 1
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = one worker per CPU)")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return jobs


def resolve_backend(backend: Optional[str] = None) -> Optional[str]:
    """Resolve a backend name: explicit value > ``REPRO_BACKEND`` > None
    (None = pick serial/multiprocessing from the job count)."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR, "").strip() or None
    if backend is None:
        return None
    backend = str(backend).lower()
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return backend


def _run_inline(fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
    """In-process task loop shared by the serial backend and the
    single-worker fast path; records per-task spans and durations when
    telemetry is on (as children of the caller's ``map_tasks`` span)."""
    if not STATE.enabled:
        return [fn(task) for task in tasks]
    registry = STATE.registry
    fn_name = getattr(fn, "__name__", str(fn))
    results: List[Any] = []
    for index, task in enumerate(tasks):
        set_task(index)
        start = time.perf_counter()
        try:
            with span("task", index=index, fn=fn_name):
                results.append(fn(task))
        finally:
            set_task(None)
        registry.histogram("runtime.task_seconds").observe(
            time.perf_counter() - start)
        registry.counter("runtime.tasks_completed").inc()
    return results


# ----------------------------------------------------------------------
# Worker side of the pipe protocol.
#
# Dispatch message (pre-pickled by the parent, so the byte count that
# telemetry records is exactly what crossed the pipe):
#     (index, fn, task, telem)
# Reply:
#     (index, "ok" | "error", result_or_exception, telemetry_payload)
# A ``None`` message is the shutdown sentinel.

def _worker_main(conn) -> None:
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        index, fn, task, telem = message
        payload = None
        if telem:
            telemetry.begin_worker_task(index)
        try:
            if telem:
                start = time.perf_counter()
                with span("task", index=index,
                          fn=getattr(fn, "__name__", str(fn))):
                    value = fn(task)
                STATE.registry.histogram("runtime.task_seconds").observe(
                    time.perf_counter() - start)
                STATE.registry.counter("runtime.tasks_completed").inc()
                payload = telemetry.export_worker_payload()
            else:
                value = fn(task)
            reply: Tuple[Any, ...] = (index, "ok", value, payload)
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            if telem:
                payload = telemetry.export_worker_payload()
            try:
                pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                exc = RuntimeError(f"{type(exc).__name__}: {exc}")
            reply = (index, "error", exc, payload)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass


class _WorkerHandle:
    __slots__ = ("process", "conn")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn


def _close_pool(workers: List[_WorkerHandle]) -> None:
    """Shut a pool's workers down (also the ``weakref.finalize``
    backstop when an executor is dropped without ``close()``)."""
    sentinel = pickle.dumps(None, protocol=pickle.HIGHEST_PROTOCOL)
    for worker in workers:
        try:
            worker.conn.send_bytes(sentinel)
        except (BrokenPipeError, OSError):
            pass
    for worker in workers:
        worker.process.join(timeout=2.0)
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=2.0)
        try:
            worker.conn.close()
        except OSError:
            pass
    workers.clear()


class _WorkerPool:
    """A persistent set of pipe-connected worker processes.

    Unlike ``multiprocessing.Pool`` (which deadlocks when a worker dies
    mid-task), each worker here owns a duplex pipe: a dead worker shows
    up as an ``EOFError`` on its connection, at which point the pool
    respawns a replacement and re-queues the in-flight task (up to
    :data:`MAX_TASK_ATTEMPTS` dispatches per task).
    """

    def __init__(self, ctx, max_workers: int):
        self._ctx = ctx
        self.max_workers = max_workers
        self._workers: List[_WorkerHandle] = []
        self._closed = False
        # Set while no run() is active: close(drain=True) waits on it
        # so a shutdown requested from another thread (the repro.serve
        # daemon's SIGTERM path) never terminates a worker mid-task —
        # in particular never while it is still reading a SharedArena
        # block the caller would then unlink.
        self._idle = threading.Event()
        self._idle.set()

    @property
    def worker_pids(self) -> List[int]:
        return [w.process.pid for w in self._workers]

    def _spawn(self) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True)
        process.start()
        child_conn.close()
        worker = _WorkerHandle(process, parent_conn)
        self._workers.append(worker)
        return worker

    def _discard(self, worker: _WorkerHandle) -> None:
        if worker in self._workers:
            self._workers.remove(worker)
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=2.0)
        try:
            worker.conn.close()
        except OSError:
            pass

    def run(self, fn: Callable[[Any], Any], tasks: Sequence[Any],
            workers: int, telem: bool) -> List[Any]:
        """Dispatch every task, in task order, over ``workers`` pipes."""
        if self._closed:
            raise RuntimeError("worker pool is closed")
        self._idle.clear()
        try:
            return self._run(fn, tasks, workers, telem)
        finally:
            self._idle.set()

    def _run(self, fn: Callable[[Any], Any], tasks: Sequence[Any],
             workers: int, telem: bool) -> List[Any]:
        results: List[Any] = [None] * len(tasks)
        pending: Deque[Tuple[int, Any]] = deque(enumerate(tasks))
        attempts: Dict[int, int] = {}
        in_flight: Dict[Any, Tuple[_WorkerHandle, int, Any]] = {}
        error: Optional[BaseException] = None
        registry = STATE.registry

        while len(self._workers) < min(workers, self.max_workers,
                                       len(tasks)):
            self._spawn()
        idle: Deque[_WorkerHandle] = deque(self._workers)

        while pending or in_flight:
            while pending and idle and error is None:
                index, task = pending.popleft()
                attempts[index] = attempts.get(index, 0) + 1
                worker = idle.popleft()
                blob = pickle.dumps((index, fn, task, telem),
                                    protocol=pickle.HIGHEST_PROTOCOL)
                if telem:
                    registry.counter("runtime.dispatch_bytes").inc(len(blob))
                    registry.counter("runtime.tasks_dispatched").inc()
                try:
                    worker.conn.send_bytes(blob)
                except (BrokenPipeError, OSError):
                    # Worker died while idle: replace it, put the task
                    # back (dispatch never reached it).
                    self._discard(worker)
                    if attempts[index] >= MAX_TASK_ATTEMPTS:
                        error = RuntimeError(
                            f"task {index} could not be dispatched after "
                            f"{MAX_TASK_ATTEMPTS} attempts: workers keep "
                            "dying")
                        break
                    self._note_retry(index, attempts[index], worker, telem)
                    pending.appendleft((index, task))
                    idle.append(self._spawn())
                    continue
                in_flight[worker.conn] = (worker, index, task)
            if not in_flight:
                break
            for conn in _conn_wait(list(in_flight)):
                worker, index, task = in_flight.pop(conn)
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    # Worker died mid-task.
                    pid = worker.process.pid
                    self._discard(worker)
                    if attempts[index] >= MAX_TASK_ATTEMPTS:
                        if error is None:
                            error = RuntimeError(
                                f"task {index} failed {MAX_TASK_ATTEMPTS} "
                                f"times: worker died (last pid {pid})")
                        continue
                    self._note_retry(index, attempts[index], worker, telem)
                    if error is None:
                        pending.append((index, task))
                        idle.append(self._spawn())
                    continue
                _, status, value, payload = reply
                if telem:
                    telemetry.absorb_worker_payload(payload)
                if status == "ok":
                    results[index] = value
                elif error is None:
                    error = value
                idle.append(worker)
        if error is not None:
            raise error
        return results

    @staticmethod
    def _note_retry(index: int, attempt: int, worker: _WorkerHandle,
                    telem: bool) -> None:
        if telem:
            STATE.registry.counter("runtime.worker_retries").inc()
            telemetry.emit_event(
                "worker_retry", task=index, attempt=attempt,
                pid=worker.process.pid)

    #: How long close(drain=True) waits for an in-flight run() before
    #: shutting workers down anyway (a backstop, not a contract: the
    #: remaining batch is then interrupted mid-task).
    DRAIN_TIMEOUT = 60.0

    def close(self, drain: bool = True,
              timeout: Optional[float] = None) -> None:
        """Shut the pool down (idempotent).

        With ``drain`` (the default), waits for any in-flight
        :meth:`run` — typically on another thread — to finish first,
        so workers are never terminated while holding task state or
        reading shared-memory blocks their caller is about to unlink.
        """
        if self._closed:
            return
        if drain:
            self._idle.wait(self.DRAIN_TIMEOUT if timeout is None
                            else timeout)
        self._closed = True
        _close_pool(self._workers)


class Executor(ABC):
    """Maps a task function over a sequence of task objects.

    Results are returned in task order regardless of completion order,
    so callers can zip tasks with results.  Executors are context
    managers; ``close()`` releases any worker pool.
    """

    #: Human-readable backend name (surfaced in NetShare diagnostics).
    name: str = "base"
    #: Number of concurrent workers this executor may use.
    jobs: int = 1
    #: True when callers should move bulk payloads into a SharedArena
    #: and dispatch manifests instead of tensors.
    uses_shared_memory: bool = False

    def __init__(self):
        #: Cumulative pickled task-payload bytes (only populated while
        #: REPRO_MEASURE_DISPATCH is set; None otherwise).
        self.dispatch_bytes: Optional[int] = None
        self.dispatch_tasks: int = 0

    @abstractmethod
    def map_tasks(self, fn: Callable[[Any], Any],
                  tasks: Sequence[Any]) -> List[Any]:
        """Run ``fn`` on every task; return results in task order."""

    def close(self) -> None:
        """Release pooled workers (no-op for in-process backends)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _record_dispatch(self, tasks: Sequence[Any]) -> None:
        if not os.environ.get(MEASURE_DISPATCH_ENV_VAR, "").strip():
            return
        size = sum(
            len(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))
            for task in tasks
        )
        self.dispatch_bytes = (self.dispatch_bytes or 0) + size
        self.dispatch_tasks += len(tasks)


class SerialExecutor(Executor):
    """In-process reference backend: a plain loop."""

    name = "serial"
    jobs = 1

    def map_tasks(self, fn, tasks):
        tasks = list(tasks)
        self._record_dispatch(tasks)
        with span("map_tasks", backend=self.name, tasks=len(tasks), jobs=1):
            return _run_inline(fn, tasks)


class MultiprocessingExecutor(Executor):
    """Fan tasks out across a persistent pipe-based worker pool.

    The task function must be a module-level callable and every task
    picklable.  Single-task (or single-worker) calls run in-process to
    avoid worker startup cost — results are identical either way by
    the determinism contract.  The pool (and with it the workers'
    per-process caches) survives across ``map_tasks`` calls until
    ``close()``; a worker that dies mid-task is respawned and its task
    retried up to :data:`MAX_TASK_ATTEMPTS` dispatches.
    """

    name = "multiprocessing"

    def __init__(self, jobs: Optional[int] = None):
        super().__init__()
        self.jobs = resolve_jobs(jobs if jobs is not None else 0)
        self._pool: Optional[_WorkerPool] = None
        self._finalizer: Optional[weakref.finalize] = None

    def _context(self):
        # fork is cheapest where available (Linux); spawn elsewhere.
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")

    def _ensure_pool(self) -> _WorkerPool:
        if self._pool is None:
            self._pool = _WorkerPool(self._context(), self.jobs)
            # Backstop: reap workers if the executor is garbage
            # collected without close() (must not capture ``self``).
            self._finalizer = weakref.finalize(
                self, _close_pool, self._pool._workers)
        return self._pool

    @property
    def worker_pids(self) -> List[int]:
        """PIDs of live pooled workers (observability/testing)."""
        return self._pool.worker_pids if self._pool is not None else []

    def close(self) -> None:
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def map_tasks(self, fn, tasks):
        tasks = list(tasks)
        if not tasks:
            return []
        self._record_dispatch(tasks)
        workers = min(self.jobs, len(tasks))
        # Workers buffer their telemetry and ship it back only when the
        # orchestrating process is recording (never nested in a worker).
        telem = STATE.enabled and not STATE.worker_mode
        with span("map_tasks", backend=self.name, tasks=len(tasks),
                  jobs=workers):
            if workers <= 1:
                return _run_inline(fn, tasks)
            return self._ensure_pool().run(fn, tasks, workers, telem)


class SharedMemoryExecutor(MultiprocessingExecutor):
    """Multiprocessing fan-out fed through the zero-copy data plane.

    The executor itself schedules exactly like its parent; the
    difference is the ``uses_shared_memory`` flag, which tells callers
    (``NetShare.fit``/``generate``, ``EWganGp.fit``) to stage encoded
    tensors and frozen states in a :class:`~repro.runtime.shm.SharedArena`
    so each dispatched task is a few hundred bytes of manifest instead
    of megabytes of pickled tensor.
    """

    name = "shm"
    uses_shared_memory = True


# Backend registry: name -> factory(jobs, hosts).  The in-process
# backends register here eagerly; the remote backend registers itself
# when repro.runtime.remote is imported (get_executor imports it
# lazily on first use so the socket layer stays off the single-machine
# import path).
_BACKEND_FACTORIES: Dict[str, Callable[..., Executor]] = {}


def register_backend(name: str,
                     factory: Callable[..., Executor]) -> None:
    """Register an executor factory for a :data:`BACKENDS` name.

    ``factory(jobs, hosts)`` must return an :class:`Executor`;
    backends that ignore one of the arguments simply drop it.
    """
    _BACKEND_FACTORIES[str(name)] = factory


register_backend("serial", lambda jobs, hosts: SerialExecutor())
register_backend("multiprocessing",
                 lambda jobs, hosts: MultiprocessingExecutor(jobs))
register_backend("shm", lambda jobs, hosts: SharedMemoryExecutor(jobs))


def get_executor(jobs: Optional[int] = None,
                 backend: Optional[str] = None,
                 hosts: Optional[str] = None) -> Executor:
    """Build the executor for a job count and optional backend name
    (see :func:`resolve_jobs` / :func:`resolve_backend`).

    ``hosts`` (a ``host:port,host:port`` list, or the ``REPRO_HOSTS``
    environment variable) only matters to the ``remote`` backend; when
    ``hosts`` is given without an explicit backend, remote is chosen.
    """
    resolved = resolve_jobs(jobs)
    chosen = resolve_backend(backend)
    if chosen is None and hosts:
        chosen = "remote"
    if chosen is None:
        chosen = "serial" if resolved <= 1 else "multiprocessing"
    if chosen not in _BACKEND_FACTORIES:
        # The remote factory lives in its own module; importing it
        # registers the backend (see module docstring there).
        from . import remote  # noqa: F401  (import-for-registration)
    return _BACKEND_FACTORIES[chosen](resolved, hosts)
