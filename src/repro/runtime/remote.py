"""Multi-host ``remote`` executor backend: the coordinator side.

Every speedup before this module — shm zero-copy, persistent pipe
pools, tape replay — stops at one machine's cores.  The remote backend
extends ``Executor.map_tasks()`` past that boundary: a coordinator
ships task manifests to long-lived worker-host processes
(``python -m repro.runtime.remote_worker --listen HOST:PORT``) over
the length-prefixed framing of :mod:`repro.runtime.wire`.

Design, point by point:

* **Manifests, not payloads.**  Tasks are rewritten by
  :func:`~repro.runtime.serialization.pack_tasks`: bulk tensors and
  frozen states become content-hash blob manifests, and the blob bytes
  ship separately — at most once per host per content hash (the
  per-link ``shipped`` ledger, mirroring the serve registry's
  zero-pickling-on-hit design).  The executor announces
  ``uses_shared_memory`` so callers stage exactly as they do for the
  ``shm`` backend; the coordinator reads the staged blocks back when
  packing, and each host re-stages blobs into its *own*
  ``SharedArena`` for its local workers.
* **Fault model.**  The pipe pool's respawn/retry semantics
  generalize: a dead host (EOF, torn frame, socket error/timeout)
  gets its in-flight tasks re-queued onto surviving hosts, bounded by
  :data:`~repro.runtime.executor.MAX_TASK_ATTEMPTS` dispatches per
  task; the dead host is redialed with exponential backoff and,
  on reconnect, a cleared dedup ledger (its blob store may be gone).
  ``close()`` is drain-aware and idempotent, like the pool's.
* **Determinism.**  Tasks carry every seed they need, so *where* a
  task runs never changes its result: remote output is bit-identical
  to the serial oracle for fit, generate, and serve — the parity
  tests and ``BENCH_remote.json`` gate exactly that.

Trust model: frames are pickles (see :mod:`repro.runtime.wire`), so
hosts must be trusted peers on a private network or loopback.
"""

from __future__ import annotations

import os
import select
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from .. import telemetry
from ..telemetry import emit_event
from ..telemetry.spans import span
from ..telemetry.state import STATE
from .executor import Executor, MAX_TASK_ATTEMPTS, register_backend
from .serialization import manifest_hashes, pack_tasks
from .wire import FrameError, recv_frame, send_frame

__all__ = [
    "RemoteExecutor",
    "WorkerHostProcess",
    "spawn_worker_host",
    "parse_hosts",
    "HOSTS_ENV_VAR",
    "REMOTE_TIMEOUT_ENV_VAR",
    "WIRE_VERSION",
]

#: Fallback host list (``host:port,host:port``) when no explicit
#: ``hosts`` is passed to :func:`~repro.runtime.executor.get_executor`.
HOSTS_ENV_VAR = "REPRO_HOSTS"
#: Optional per-task socket deadline in seconds: a host that holds a
#: task longer is treated as dead (its tasks re-queue).  Unset = wait.
REMOTE_TIMEOUT_ENV_VAR = "REPRO_REMOTE_TIMEOUT"

#: Coordinator/host protocol version, checked in the hello exchange.
WIRE_VERSION = 1

#: Reconnect backoff: ``BASE * 2**(failures-1)`` capped at ``CAP``.
RECONNECT_BASE = 0.05
RECONNECT_CAP = 2.0
#: Consecutive connect failures per host before a map_tasks call with
#: no surviving hosts gives up.
MAX_CONNECT_FAILURES = 6

#: Socket timeout for the connect + hello exchange.
CONNECT_TIMEOUT = 5.0
#: Per-recv/send chunk timeout once connected: a peer that stalls the
#: transport this long mid-frame is dead for our purposes.
FRAME_TIMEOUT = 120.0


def parse_hosts(hosts: Optional[Any]) -> List[Tuple[str, int]]:
    """Normalize a host list: ``"h:p,h:p"``, an iterable of ``"h:p"``
    strings or ``(host, port)`` pairs; falls back to ``REPRO_HOSTS``."""
    if hosts is None:
        hosts = os.environ.get(HOSTS_ENV_VAR, "").strip() or None
    if hosts is None:
        raise ValueError(
            "the remote backend needs worker hosts: pass hosts="
            f"'host:port,host:port' or set {HOSTS_ENV_VAR}")
    if isinstance(hosts, str):
        hosts = [part for part in hosts.split(",") if part.strip()]
    parsed: List[Tuple[str, int]] = []
    for entry in hosts:
        if isinstance(entry, (tuple, list)) and len(entry) == 2:
            parsed.append((str(entry[0]), int(entry[1])))
            continue
        text = str(entry).strip()
        host, sep, port = text.rpartition(":")
        if not sep or not host:
            raise ValueError(f"host entry {text!r} is not host:port")
        parsed.append((host, int(port)))
    if not parsed:
        raise ValueError("empty remote host list")
    return parsed


class _HostLink:
    """Connection state for one worker host."""

    __slots__ = ("addr", "label", "sock", "slots", "pid", "shipped",
                 "in_flight", "failures", "next_retry")

    def __init__(self, addr: Tuple[str, int]):
        self.addr = addr
        self.label = f"{addr[0]}:{addr[1]}"
        self.sock: Optional[socket.socket] = None
        self.slots = 1
        self.pid: Optional[int] = None
        #: Blob hashes this host holds (per-connection dedup ledger).
        self.shipped: Set[str] = set()
        #: task index -> optional wall deadline (REPRO_REMOTE_TIMEOUT).
        self.in_flight: Dict[int, Optional[float]] = {}
        self.failures = 0
        self.next_retry = 0.0

    @property
    def connected(self) -> bool:
        return self.sock is not None

    def backoff(self) -> float:
        return min(RECONNECT_BASE * (2 ** max(self.failures - 1, 0)),
                   RECONNECT_CAP)


class RemoteExecutor(Executor):
    """Fan ``map_tasks`` out across socket-connected worker hosts.

    ``hosts`` is a ``host:port,host:port`` string (or list), defaulting
    to the ``REPRO_HOSTS`` environment variable.  Connections are
    dialed lazily on the first ``map_tasks`` call and persist across
    calls, so host-side blob stores and per-process model/encoder
    caches stay warm for generate's top-up rounds — exactly like the
    pipe pool, one network hop further out.
    """

    name = "remote"
    #: Callers stage bulk payloads exactly as for the shm backend; the
    #: coordinator packs the staged refs into wire blobs.
    uses_shared_memory = True

    def __init__(self, jobs: Optional[int] = None,
                 hosts: Optional[Any] = None):
        super().__init__()
        self._links = [_HostLink(addr) for addr in parse_hosts(hosts)]
        # Until the hello exchange reports real slot counts, assume
        # one slot per host (jobs is advisory for this backend).
        self.jobs = max(len(self._links), int(jobs or 0) or 1)
        self._closed = False
        self._idle = threading.Event()
        self._idle.set()
        raw_timeout = os.environ.get(REMOTE_TIMEOUT_ENV_VAR, "").strip()
        self._task_timeout = float(raw_timeout) if raw_timeout else None
        #: Wire accounting, exposed for the dedup/dispatch-byte gates:
        #: blob ship counts per (host label, content hash) plus totals.
        self.ship_counts: Dict[Tuple[str, str], int] = {}
        self.stats: Dict[str, int] = {
            "tasks_sent": 0, "task_bytes_sent": 0,
            "blobs_sent": 0, "blob_bytes_sent": 0, "blob_dedup_hits": 0,
            "retries": 0, "reconnects": 0, "host_failures": 0,
        }

    # -- connection management -----------------------------------------
    @property
    def host_labels(self) -> List[str]:
        return [link.label for link in self._links]

    @property
    def connected_hosts(self) -> List[str]:
        return [link.label for link in self._links if link.connected]

    def _connect(self, link: _HostLink) -> None:
        sock = socket.create_connection(link.addr, timeout=CONNECT_TIMEOUT)
        try:
            send_frame(sock, ("hello", {
                "version": WIRE_VERSION,
                "run_id": STATE.run_id,
            }))
            reply = recv_frame(sock)
            if (not isinstance(reply, tuple) or len(reply) != 2
                    or reply[0] != "hello"):
                raise FrameError(
                    f"host {link.label} sent a bad hello: {reply!r}")
            info = reply[1]
            if info.get("version") != WIRE_VERSION:
                raise RuntimeError(
                    f"host {link.label} speaks wire version "
                    f"{info.get('version')}, coordinator speaks "
                    f"{WIRE_VERSION}")
        except BaseException:
            sock.close()
            raise
        sock.settimeout(FRAME_TIMEOUT)
        link.sock = sock
        link.slots = max(int(info.get("slots", 1)), 1)
        link.pid = info.get("pid")
        link.shipped.clear()
        link.in_flight.clear()
        if link.failures:
            self.stats["reconnects"] += 1
            if STATE.enabled:
                STATE.registry.counter("runtime.remote.reconnects").inc()
        link.failures = 0
        emit_event("remote_host_connect", host=link.label,
                   slots=link.slots, pid=link.pid)

    def _reconnect_due(self, now: float) -> None:
        for link in self._links:
            if link.connected or now < link.next_retry:
                continue
            try:
                self._connect(link)
            except (OSError, FrameError, ConnectionError):
                link.failures += 1
                link.next_retry = now + link.backoff()
                emit_event("remote_reconnect_failed", host=link.label,
                           failures=link.failures,
                           backoff=round(link.backoff(), 3))
        live = [link for link in self._links if link.connected]
        if live:
            self.jobs = sum(link.slots for link in live)

    def _host_down(self, link: _HostLink, pending: Deque[int],
                   attempts: Dict[int, int], telem: bool
                   ) -> Optional[BaseException]:
        """Tear one link down; re-queue its in-flight tasks.  Returns
        an error when a task has exhausted its dispatch budget."""
        error: Optional[BaseException] = None
        if link.sock is not None:
            try:
                link.sock.close()
            except OSError:
                pass
        link.sock = None
        requeued = list(link.in_flight)
        link.in_flight.clear()
        link.shipped.clear()
        link.failures += 1
        link.next_retry = time.monotonic() + link.backoff()
        self.stats["host_failures"] += 1
        emit_event("remote_host_down", host=link.label,
                   in_flight=len(requeued), failures=link.failures)
        if telem and STATE.enabled:
            STATE.registry.counter("runtime.remote.host_failures").inc()
        for index in requeued:
            if attempts.get(index, 0) >= MAX_TASK_ATTEMPTS:
                error = RuntimeError(
                    f"task {index} failed {MAX_TASK_ATTEMPTS} times: "
                    f"remote hosts keep dying (last {link.label})")
                continue
            self.stats["retries"] += 1
            if telem and STATE.enabled:
                STATE.registry.counter("runtime.remote.retries").inc()
            emit_event("remote_retry", task=index,
                       attempt=attempts.get(index, 0), host=link.label)
            pending.append(index)
        return error

    # -- dispatch / receive --------------------------------------------
    def _dispatch(self, link: _HostLink, index: int, fn, packed: Any,
                  needed: Sequence[str], blobs, telem: bool) -> None:
        """Ship missing blobs, then the task frame (raises OSError on a
        dead transport — the caller owns the fault handling)."""
        sock = link.sock
        for content_hash in needed:
            if content_hash in link.shipped:
                self.stats["blob_dedup_hits"] += 1
                if telem and STATE.enabled:
                    STATE.registry.counter(
                        "runtime.remote.blob_dedup_hits").inc()
                continue
            blob = blobs[content_hash]
            send_frame(sock, ("blob", content_hash, blob.dtype.str,
                              tuple(blob.shape), blob.tobytes()))
            link.shipped.add(content_hash)
            key = (link.label, content_hash)
            self.ship_counts[key] = self.ship_counts.get(key, 0) + 1
            self.stats["blobs_sent"] += 1
            self.stats["blob_bytes_sent"] += int(blob.nbytes)
            if telem and STATE.enabled:
                STATE.registry.counter("runtime.remote.blobs_sent").inc()
                STATE.registry.counter(
                    "runtime.remote.blob_bytes").inc(int(blob.nbytes))
        nbytes = send_frame(sock, ("task", index, fn, packed, telem))
        self.stats["tasks_sent"] += 1
        self.stats["task_bytes_sent"] += nbytes
        if telem and STATE.enabled:
            STATE.registry.counter("runtime.remote.dispatch_bytes").inc(
                nbytes)
            STATE.registry.counter("runtime.tasks_dispatched").inc()
        deadline = (time.monotonic() + self._task_timeout
                    if self._task_timeout else None)
        link.in_flight[index] = deadline

    @staticmethod
    def _annotate_payload(payload, host_label: str) -> None:
        """Stamp the origin host onto a worker envelope's root spans so
        the spliced trace tree carries (run_id, host, worker_pid)."""
        for item in (payload or {}).get("spans") or ():
            attrs = item.get("attrs") or {}
            attrs["host"] = host_label
            item["attrs"] = attrs

    # -- the map loop ---------------------------------------------------
    def map_tasks(self, fn: Callable[[Any], Any],
                  tasks: Sequence[Any]) -> List[Any]:
        if self._closed:
            raise RuntimeError("remote executor is closed")
        tasks = list(tasks)
        if not tasks:
            return []
        self._record_dispatch(tasks)
        telem = STATE.enabled and not STATE.worker_mode
        self._idle.clear()
        try:
            with span("map_tasks", backend=self.name, tasks=len(tasks),
                      jobs=self.jobs):
                return self._run(fn, tasks, telem)
        finally:
            self._idle.set()

    def _run(self, fn, tasks: List[Any], telem: bool) -> List[Any]:
        packed, blobs = pack_tasks(tasks)
        needs = [sorted(manifest_hashes(item)) for item in packed]
        results: List[Any] = [None] * len(tasks)
        completed = [False] * len(tasks)
        n_done = 0
        pending: Deque[int] = deque(range(len(tasks)))
        attempts: Dict[int, int] = {}
        resends: Dict[int, int] = {}
        error: Optional[BaseException] = None
        map_start_stats = dict(self.stats)

        while ((pending and error is None)
               or any(link.in_flight for link in self._links)):
            now = time.monotonic()
            self._reconnect_due(now)
            # Dispatch onto the healthiest hosts first so a flapping
            # peer doesn't burn a task's attempt budget while stable
            # hosts sit idle.
            live = sorted((link for link in self._links if link.connected),
                          key=lambda link: (link.failures, link.label))
            if error is None:
                for link in live:
                    while pending and len(link.in_flight) < link.slots:
                        index = pending.popleft()
                        attempts[index] = attempts.get(index, 0) + 1
                        try:
                            self._dispatch(link, index, fn, packed[index],
                                           needs[index], blobs, telem)
                        except (OSError, FrameError, ConnectionError):
                            # The frame may not have arrived; treat as
                            # an in-flight loss so the attempt counts.
                            link.in_flight[index] = None
                            error = self._host_down(
                                link, pending, attempts, telem) or error
                            break
            waiting = [link for link in self._links
                       if link.connected and link.in_flight]
            if not waiting:
                if not pending or error is not None:
                    if any(link.in_flight for link in self._links):
                        continue
                    break
                if all(link.failures >= MAX_CONNECT_FAILURES
                       for link in self._links):
                    raise RuntimeError(
                        "no remote host reachable after "
                        f"{MAX_CONNECT_FAILURES} connect attempts each: "
                        f"{', '.join(self.host_labels)}")
                retry_in = min(link.next_retry for link in self._links
                               if not link.connected) - time.monotonic()
                time.sleep(min(max(retry_in, 0.0), 0.25) or 0.01)
                continue
            readable, _, _ = select.select(
                [link.sock for link in waiting], [], [], 0.1)
            by_sock = {link.sock: link for link in waiting}
            for sock in readable:
                link = by_sock[sock]
                if not link.connected:
                    continue  # torn down earlier in this sweep
                outcome = self._receive(link, results, completed, pending,
                                        attempts, resends, telem)
                if isinstance(outcome, BaseException):
                    error = error or outcome
                else:
                    n_done += outcome
            if self._task_timeout:
                now = time.monotonic()
                for link in list(waiting):
                    if link.connected and any(
                            deadline is not None and now > deadline
                            for deadline in link.in_flight.values()):
                        emit_event("remote_host_timeout", host=link.label)
                        error = self._host_down(
                            link, pending, attempts, telem) or error

        if error is not None:
            raise error
        emit_event(
            "remote_map", tasks=len(tasks),
            hosts=len(self.connected_hosts),
            task_bytes=self.stats["task_bytes_sent"]
            - map_start_stats["task_bytes_sent"],
            blobs_sent=self.stats["blobs_sent"]
            - map_start_stats["blobs_sent"],
            blob_bytes=self.stats["blob_bytes_sent"]
            - map_start_stats["blob_bytes_sent"],
            dedup_hits=self.stats["blob_dedup_hits"]
            - map_start_stats["blob_dedup_hits"],
            retries=self.stats["retries"] - map_start_stats["retries"],
        )
        return results

    def _receive(self, link: _HostLink, results, completed, pending,
                 attempts, resends, telem: bool):
        """Handle one frame from a host.  Returns the number of newly
        completed tasks, or an exception to surface."""
        try:
            message = recv_frame(link.sock)
        except (OSError, FrameError, ConnectionError):
            message = None
        if message is None:
            return self._host_down(link, pending, attempts, telem) or 0
        kind = message[0]
        if kind == "result":
            _, index, status, value, payload = message
            link.in_flight.pop(index, None)
            if telem and payload:
                self._annotate_payload(payload, link.label)
                telemetry.absorb_worker_payload(payload)
            if status == "ok":
                if completed[index]:
                    return 0  # stale duplicate after a timeout re-queue
                results[index] = value
                completed[index] = True
                return 1
            return value if isinstance(value, BaseException) else \
                RuntimeError(f"task {index} failed on {link.label}: "
                             f"{value!r}")
        if kind == "need":
            # The host evicted blobs this task references (bounded
            # store); clear them from the dedup ledger and resend.
            _, index, missing = message
            link.in_flight.pop(index, None)
            link.shipped.difference_update(missing)
            resends[index] = resends.get(index, 0) + 1
            if resends[index] > MAX_TASK_ATTEMPTS:
                return RuntimeError(
                    f"task {index} bounced off {link.label} "
                    f"{resends[index]} times (blob store thrashing); "
                    "raise the host's --blob-capacity")
            attempts[index] = max(attempts.get(index, 1) - 1, 0)
            pending.appendleft(index)
            return 0
        if kind == "pong":
            return 0
        return RuntimeError(
            f"unexpected frame {kind!r} from host {link.label}")

    # -- lifecycle ------------------------------------------------------
    #: How long close() waits for an in-flight map_tasks on another
    #: thread before closing sockets anyway (backstop, not contract).
    DRAIN_TIMEOUT = 60.0

    def close(self, drain: bool = True,
              timeout: Optional[float] = None) -> None:
        """Disconnect from every host (idempotent, drain-aware).

        Worker hosts are long-lived infrastructure — closing the
        executor ends *this coordinator's session* (a polite ``bye``),
        it does not shut the hosts down.
        """
        if self._closed:
            return
        if drain:
            self._idle.wait(self.DRAIN_TIMEOUT if timeout is None
                            else timeout)
        self._closed = True
        for link in self._links:
            if link.sock is None:
                continue
            try:
                send_frame(link.sock, ("bye",))
            except (OSError, FrameError, ConnectionError):
                pass
            try:
                link.sock.close()
            except OSError:
                pass
            link.sock = None


register_backend("remote",
                 lambda jobs, hosts: RemoteExecutor(jobs, hosts=hosts))


# ---------------------------------------------------------------------------
# Worker-host process management (tests, benches, and the CI smoke job
# all boot loopback hosts through this helper).
# ---------------------------------------------------------------------------

class WorkerHostProcess:
    """Handle on a spawned ``repro.runtime.remote_worker`` process."""

    def __init__(self, process: subprocess.Popen,
                 address: Tuple[str, int]):
        self.process = process
        self.address = address
        self.label = f"{address[0]}:{address[1]}"

    @property
    def pid(self) -> int:
        return self.process.pid

    def kill(self) -> None:
        """Hard-kill (the host-death tests' murder weapon)."""
        self.process.kill()
        self.process.wait(timeout=10.0)

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful stop (SIGTERM), escalating to kill."""
        if self.process.poll() is not None:
            return
        self.process.terminate()
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=timeout)

    def __enter__(self) -> "WorkerHostProcess":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def spawn_worker_host(jobs: int = 1, host: str = "127.0.0.1",
                      journal_dir: Optional[str] = None,
                      blob_capacity: Optional[int] = None,
                      env: Optional[Dict[str, str]] = None,
                      startup_timeout: float = 30.0) -> WorkerHostProcess:
    """Launch a loopback worker host on an ephemeral port and wait for
    its "listening on" banner; returns a handle with the bound address.
    """
    command = [sys.executable, "-m", "repro.runtime.remote_worker",
               "--listen", f"{host}:0", "--jobs", str(jobs)]
    if journal_dir is not None:
        command += ["--journal", str(journal_dir)]
    if blob_capacity is not None:
        command += ["--blob-capacity", str(blob_capacity)]
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, text=True,
        env=dict(os.environ, **(env or {})))
    deadline = time.monotonic() + startup_timeout
    banner = ""
    while time.monotonic() < deadline:
        ready, _, _ = select.select([process.stdout], [], [], 0.2)
        if ready:
            banner = process.stdout.readline()
            break
        if process.poll() is not None:
            raise RuntimeError(
                f"worker host exited with {process.returncode} "
                "before announcing its port")
    marker = " listening on "
    if marker not in banner:
        process.kill()
        raise RuntimeError(
            f"worker host did not announce its port in "
            f"{startup_timeout}s (got {banner!r})")
    address = banner.split(marker, 1)[1].split()[0]
    bound_host, _, port = address.rpartition(":")
    return WorkerHostProcess(process, (bound_host, int(port)))
