"""Long-lived worker-host process for the ``remote`` executor backend.

Run one per machine::

    python -m repro.runtime.remote_worker --listen 0.0.0.0:7070 --jobs 8

The host is a mini-coordinator that replays the ``shm`` backend
locally: blobs pushed by the coordinator are staged once into a
host-owned :class:`~repro.runtime.shm.SharedArena` (the
:class:`BlobStore`, a bounded LRU keyed by content hash), and each
task frame is rebuilt by :func:`~repro.runtime.serialization.
unpack_task` into exactly the shape the shm backend would have
dispatched — ``ArrayRef``/``FrozenState``/``SharedEncodedFlows``
referencing host-local blocks.  The existing task functions and their
per-process caches (frozen-state thaw, generate-side model/encoder)
therefore run unchanged, which is what keeps remote output
bit-identical to the serial oracle.

With ``--jobs > 1`` the host fans tasks out to its own persistent
pipe-worker pool (the same ``_worker_main`` protocol as the
single-machine backends) and streams results back as they complete;
a worker that dies mid-task is respawned and the task retried locally
before the failure is surfaced to the coordinator.

If the coordinator references a blob the store has evicted, the host
replies ``("need", index, missing_hashes)`` instead of running the
task; the coordinator re-ships and re-sends.

The host serves one coordinator connection at a time (matching how
``fit`` and ``generate`` each open their own executor) and loops back
to ``accept`` when a session ends, keeping the blob store and worker
caches warm across sessions.  ``SIGTERM`` stops it gracefully.

Trust model: identical to :mod:`repro.runtime.wire` — frames are
pickles, so bind to loopback or a private network only.
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import pickle
import signal
import socket
import sys
from collections import OrderedDict, deque
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..telemetry.journal import RunJournal
from ..telemetry.spans import span
from ..telemetry.state import STATE
from .executor import (MAX_TASK_ATTEMPTS, _close_pool, _WorkerHandle,
                       _worker_main, resolve_jobs)
from .remote import WIRE_VERSION
from .serialization import BlobManifest, manifest_hashes, unpack_task
from .shm import ArrayRef, SharedArena
from .wire import FrameError, recv_frame, send_frame

__all__ = ["BlobStore", "WorkerHost", "main", "DEFAULT_BLOB_CAPACITY"]

#: Default LRU capacity of the host blob store, in blobs.  Each model
#: generation contributes a handful of blobs (state + encoded tensors
#: per chunk), so 256 comfortably covers fit + generate working sets;
#: undersizing it degrades to ``need``-triggered re-ships, never to
#: wrong results.
DEFAULT_BLOB_CAPACITY = 256


class BlobStore:
    """Content-addressed blob cache backed by one host-owned arena.

    ``put`` is idempotent per hash (the dedup property the coordinator
    counts on); capacity overflow evicts least-recently-used blobs via
    :meth:`SharedArena.drop`.  Eviction only strands a blob that a
    *concurrently in-flight* task still references — size the capacity
    above the per-map working set; the ``need`` protocol heals the
    cross-map case.
    """

    def __init__(self, capacity: int = DEFAULT_BLOB_CAPACITY):
        self.capacity = max(int(capacity), 1)
        self.arena = SharedArena(prefix="reprohost")
        self._refs: "OrderedDict[str, ArrayRef]" = OrderedDict()
        self.stats = {"stored": 0, "dedup_hits": 0, "evicted": 0}

    def __len__(self) -> int:
        return len(self._refs)

    def put(self, content_hash: str, dtype: str,
            shape: Tuple[int, ...], data: bytes) -> ArrayRef:
        ref = self._refs.get(content_hash)
        if ref is not None:
            self._refs.move_to_end(content_hash)
            self.stats["dedup_hits"] += 1
            return ref
        array = np.frombuffer(data, dtype=np.dtype(dtype)).reshape(shape)
        ref = self.arena.share_array(array)
        self._refs[content_hash] = ref
        self.stats["stored"] += 1
        while len(self._refs) > self.capacity:
            _, evicted = self._refs.popitem(last=False)
            self.arena.drop(evicted)
            self.stats["evicted"] += 1
        return ref

    def resolve(self, manifest: BlobManifest) -> ArrayRef:
        ref = self._refs[manifest.content_hash]
        self._refs.move_to_end(manifest.content_hash)
        return ref

    def missing(self, hashes) -> List[str]:
        return sorted(h for h in hashes if h not in self._refs)

    def close(self) -> None:
        self._refs.clear()
        self.arena.close()


class _HostStop(Exception):
    """Raised by the signal handler to unwind blocking socket calls."""


class WorkerHost:
    """One worker-host process: accept loop + local task execution."""

    def __init__(self, listen: Tuple[str, int] = ("127.0.0.1", 0),
                 jobs: int = 1,
                 journal_dir: Optional[str] = None,
                 blob_capacity: int = DEFAULT_BLOB_CAPACITY,
                 host_id: Optional[str] = None):
        self.jobs = resolve_jobs(jobs)
        self.host_id = host_id or f"{socket.gethostname()}-{os.getpid()}"
        self.store = BlobStore(blob_capacity)
        self.address: Optional[Tuple[str, int]] = None
        self.tasks_run = 0
        self._listen = listen
        self._stop = False
        # True while serving a coordinator session: SIGTERM then defers
        # to the end of the session instead of interrupting mid-frame
        # (see :meth:`request_stop`).
        self._in_session = False
        self._listener: Optional[socket.socket] = None
        # Host-side pipe-worker pool (only with --jobs > 1); reuses the
        # single-machine worker protocol wholesale.
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        self._workers: List[_WorkerHandle] = []
        self._idle: Deque[_WorkerHandle] = deque()
        # worker conn -> (worker, index, fn, task, telem, attempts)
        self._busy: Dict[Any, Tuple[Any, ...]] = {}
        # The host writes its own journal shard directly (never through
        # STATE: task execution switches STATE into worker mode, which
        # nulls STATE.journal by design).
        self.journal: Optional[RunJournal] = None
        if journal_dir is not None:
            self.journal = RunJournal(journal_dir,
                                      label=f"remote-host-{self.host_id}")

    # -- journaling -----------------------------------------------------
    def _event(self, event_type: str, **fields: Any) -> None:
        if self.journal is not None:
            self.journal.event(event_type, host=self.host_id,
                               worker_pid=os.getpid(), **fields)

    # -- local execution ------------------------------------------------
    def _execute_inline(self, index: int, fn, task, telem: bool
                        ) -> Tuple[str, Any, Optional[Dict[str, Any]]]:
        """Run one task in-process (the --jobs 1 path), producing the
        same (status, value, payload) envelope as a pipe worker."""
        payload = None
        if telem:
            telemetry.begin_worker_task(index)
        try:
            if telem:
                with span("task", index=index,
                          fn=getattr(fn, "__name__", str(fn))):
                    value = fn(task)
                STATE.registry.counter("runtime.tasks_completed").inc()
                payload = telemetry.export_worker_payload()
            else:
                value = fn(task)
            return "ok", value, payload
        except BaseException as exc:  # noqa: BLE001 - shipped back
            if telem:
                payload = telemetry.export_worker_payload()
            try:
                pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                exc = RuntimeError(f"{type(exc).__name__}: {exc}")
            return "error", exc, payload

    def _spawn_worker(self) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True)
        process.start()
        child_conn.close()
        worker = _WorkerHandle(process, parent_conn)
        self._workers.append(worker)
        return worker

    def _discard_worker(self, worker: _WorkerHandle) -> None:
        if worker in self._workers:
            self._workers.remove(worker)
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=2.0)
        try:
            worker.conn.close()
        except OSError:
            pass

    def _dispatch_local(self, index: int, fn, task, telem: bool,
                        attempts: int = 1) -> Optional[Tuple[str, Any]]:
        """Hand a task to an idle pool worker.  Returns an error
        envelope only when the task's local attempt budget is spent."""
        while True:
            if not self._idle:
                if len(self._workers) < self.jobs:
                    self._idle.append(self._spawn_worker())
                else:  # pragma: no cover - coordinator respects slots
                    raise RuntimeError("no idle worker for dispatch")
            worker = self._idle.popleft()
            blob = pickle.dumps((index, fn, task, telem),
                                protocol=pickle.HIGHEST_PROTOCOL)
            try:
                worker.conn.send_bytes(blob)
            except (BrokenPipeError, OSError):
                self._discard_worker(worker)
                if attempts >= MAX_TASK_ATTEMPTS:
                    return ("error", RuntimeError(
                        f"task {index} could not be dispatched after "
                        f"{MAX_TASK_ATTEMPTS} attempts on host "
                        f"{self.host_id}"))
                attempts += 1
                continue
            self._busy[worker.conn] = (worker, index, fn, task, telem,
                                       attempts)
            return None

    def _reap_worker_reply(self, conn, sock) -> None:
        """Forward one pool-worker reply to the coordinator (or retry
        locally if the worker died mid-task)."""
        worker, index, fn, task, telem, attempts = self._busy.pop(conn)
        try:
            reply = conn.recv()
        except (EOFError, OSError):
            pid = worker.process.pid
            self._discard_worker(worker)
            self._event("host_worker_death", task=index, pid=pid,
                        attempt=attempts)
            if attempts >= MAX_TASK_ATTEMPTS:
                send_frame(sock, ("result", index, "error", RuntimeError(
                    f"task {index} failed {MAX_TASK_ATTEMPTS} times on "
                    f"host {self.host_id}: worker died (last pid {pid})"),
                    None))
                return
            failure = self._dispatch_local(index, fn, task, telem,
                                           attempts + 1)
            if failure is not None:
                send_frame(sock, ("result", index) + failure + (None,))
            return
        _, status, value, payload = reply
        self._idle.append(worker)
        self.tasks_run += 1
        send_frame(sock, ("result", index, status, value, payload))
        self._event("host_task", task=index, status=status,
                    pool_pid=worker.process.pid)

    def _drain_busy(self) -> None:
        """Coordinator left with tasks still running: let them finish
        and drop the results, so the pool is clean for the next one."""
        while self._busy:
            for conn in _conn_wait(list(self._busy)):
                worker = self._busy.pop(conn)[0]
                try:
                    conn.recv()
                except (EOFError, OSError):
                    self._discard_worker(worker)
                    continue
                self._idle.append(worker)

    # -- protocol -------------------------------------------------------
    def _handle_task_frame(self, sock, message) -> None:
        _, index, fn, packed, telem = message
        missing = self.store.missing(manifest_hashes(packed))
        if missing:
            send_frame(sock, ("need", index, missing))
            self._event("host_need", task=index, missing=len(missing))
            return
        task = unpack_task(packed, self.store.resolve)
        if self.jobs <= 1:
            status, value, payload = self._execute_inline(
                index, fn, task, telem)
            self.tasks_run += 1
            send_frame(sock, ("result", index, status, value, payload))
            self._event("host_task", task=index, status=status)
            return
        failure = self._dispatch_local(index, fn, task, telem)
        if failure is not None:
            send_frame(sock, ("result", index) + failure + (None,))

    def _serve_connection(self, sock, peer) -> bool:
        """Serve one coordinator session.  Returns False when the
        session asked the whole host to shut down."""
        hello = recv_frame(sock)
        if (not isinstance(hello, tuple) or len(hello) != 2
                or hello[0] != "hello"):
            raise FrameError(f"coordinator sent a bad hello: {hello!r}")
        info = hello[1]
        if info.get("version") != WIRE_VERSION:
            send_frame(sock, ("hello", {"version": WIRE_VERSION,
                                        "error": "version mismatch"}))
            return True
        send_frame(sock, ("hello", {"version": WIRE_VERSION,
                                    "slots": self.jobs,
                                    "pid": os.getpid(),
                                    "host_id": self.host_id}))
        run_id = info.get("run_id")
        self._event("host_connect", peer=f"{peer[0]}:{peer[1]}",
                    coordinator=run_id)
        tasks_before = self.tasks_run
        keep_serving = True
        try:
            while True:
                # With pool tasks in flight, multiplex the socket
                # against the worker pipes so results stream back the
                # moment they finish.
                if self._busy:
                    ready = _conn_wait([sock] + list(self._busy))
                    for item in ready:
                        if item is not sock:
                            self._reap_worker_reply(item, sock)
                    if sock not in ready:
                        continue
                try:
                    message = recv_frame(sock)
                except (OSError, FrameError, ConnectionError):
                    message = None
                if message is None:
                    break
                kind = message[0]
                if kind == "blob":
                    _, content_hash, dtype, shape, data = message
                    before = len(self.store)
                    self.store.put(content_hash, dtype, shape, data)
                    self._event("host_blob", hash=content_hash[:16],
                                nbytes=len(data),
                                stored=len(self.store) > before)
                elif kind == "task":
                    self._handle_task_frame(sock, message)
                elif kind == "ping":
                    send_frame(sock, ("pong",))
                elif kind == "bye":
                    break
                elif kind == "shutdown":
                    keep_serving = False
                    break
                else:
                    raise FrameError(f"unexpected frame {kind!r}")
        finally:
            self._drain_busy()
            self._event("host_disconnect", coordinator=run_id,
                        tasks=self.tasks_run - tasks_before)
        return keep_serving

    # -- lifecycle ------------------------------------------------------
    def serve_forever(self) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(self._listen)
        listener.listen(4)
        listener.settimeout(0.5)  # poll the stop flag between accepts
        self._listener = listener
        self.address = listener.getsockname()[:2]
        print(f"repro.remote_worker listening on "
              f"{self.address[0]}:{self.address[1]} slots={self.jobs}",
              flush=True)
        self._event("host_start", listen=f"{self.address[0]}:"
                    f"{self.address[1]}", slots=self.jobs)
        try:
            while not self._stop:
                try:
                    sock, peer = listener.accept()
                except socket.timeout:
                    continue
                sock.settimeout(None)  # sessions idle between maps
                self._in_session = True
                try:
                    if not self._serve_connection(sock, peer):
                        self._stop = True
                except (OSError, FrameError, ConnectionError, EOFError):
                    pass  # coordinator died; back to accept
                finally:
                    try:
                        sock.close()
                    except OSError:
                        pass
                    self._in_session = False
        except _HostStop:
            pass
        finally:
            self.close()

    def stop(self) -> None:
        self._stop = True

    def request_stop(self) -> None:
        """Signal-safe stop: mid-session, only flag the stop (the host
        finishes the session — in particular its journal writes — and
        exits from the accept loop); when idle in ``accept``, raise
        :class:`_HostStop` to unwind the blocking call immediately."""
        self._stop = True
        if not self._in_session:
            raise _HostStop()

    def close(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        _close_pool(self._workers)
        self._idle.clear()
        self._busy.clear()
        self.store.close()
        self._event("host_stop", tasks=self.tasks_run)
        if self.journal is not None:
            self.journal.close()
            self.journal = None


def _parse_listen(text: str) -> Tuple[str, int]:
    host, sep, port = str(text).rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"--listen expects HOST:PORT, got {text!r}")
    return host, int(port)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.remote_worker",
        description="Long-lived worker host for the remote executor "
                    "backend (trusted networks only; frames are "
                    "pickles).")
    parser.add_argument("--listen", type=_parse_listen,
                        default=("127.0.0.1", 0), metavar="HOST:PORT",
                        help="bind address (port 0 = ephemeral; the "
                             "bound port is printed on stdout)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="local worker processes (0 = one per CPU; "
                             "1 = run tasks inline)")
    parser.add_argument("--journal", default=None, metavar="DIR",
                        help="write this host's journal shard under DIR "
                             "(merge shards with: python -m "
                             "repro.telemetry report DIR...)")
    parser.add_argument("--blob-capacity", type=int,
                        default=DEFAULT_BLOB_CAPACITY, metavar="N",
                        help="LRU capacity of the content-addressed "
                             "blob store, in blobs")
    parser.add_argument("--host-id", default=None,
                        help="label for journal events and diagnostics "
                             "(default: hostname-pid)")
    options = parser.parse_args(argv)
    host = WorkerHost(listen=options.listen, jobs=options.jobs,
                      journal_dir=options.journal,
                      blob_capacity=options.blob_capacity,
                      host_id=options.host_id)

    def _on_term(signum, frame):
        host.request_stop()

    signal.signal(signal.SIGTERM, _on_term)
    try:
        host.serve_forever()
    except KeyboardInterrupt:
        host.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
