"""Zero-copy shared-memory data plane for the task executors.

The multiprocessing backend pickles every task into the worker pipe,
so a :class:`~repro.runtime.chunk_tasks.ChunkTask` carrying a chunk's
encoded tensors (and possibly a full warm-start ``state_dict``) pays a
serialize/deserialize round-trip per task — for large chunks, dispatch
cost rivals training cost.  This module removes the payload from the
pipe: arrays are placed in ``multiprocessing.shared_memory`` blocks
owned by a :class:`SharedArena`, and tasks carry only tiny
:class:`ArrayRef` manifests (name/shape/dtype).  Workers attach to the
named block and build a numpy view directly onto the shared buffer —
no copy, no pickle.

Lifecycle rules:

* the **arena** (parent process) owns every block it creates and
  unlinks them all when its ``with`` block exits — on normal exit, on
  a task exception, and even if a worker died mid-task (POSIX shared
  memory persists until explicitly unlinked, so cleanup is the
  parent's job and only the parent's job).  A ``weakref.finalize``
  backstop covers arenas that are never used as context managers.
* **workers** (and same-process attachers) hold their attachments in a
  per-process cache so repeated refs to one block share a single
  mapping; handles are released at process exit.  Attached views are
  only valid while the arena is open — tasks must copy anything that
  outlives the ``map_tasks`` call (training results already do:
  ``state_dict()`` copies).
* Python < 3.13 registers *attached* segments with the resource
  tracker as if the attacher owned them, which triggers spurious
  unlink attempts at worker exit (bpo-39959); :func:`attach_array`
  unregisters the attachment so ownership stays with the arena.
"""

from __future__ import annotations

import pickle
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from secrets import token_hex
from typing import Dict, Tuple, Union

import numpy as np

from ..core.flow_encoder import EncodedFlows
from ..telemetry import emit_event
from ..telemetry.state import STATE

__all__ = [
    "ArrayRef",
    "SharedEncodedFlows",
    "SharedArena",
    "attach_array",
    "read_shared_bytes",
    "block_exists",
    "detach_all",
]


@dataclass(frozen=True)
class ArrayRef:
    """Manifest for one shared array: everything a worker needs to
    attach and rebuild the numpy view, in a few dozen pickled bytes."""

    name: str                  # shared-memory block name
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


@dataclass(frozen=True)
class SharedEncodedFlows:
    """An :class:`EncodedFlows` whose tensors live in shared memory."""

    metadata: ArrayRef
    measurements: ArrayRef
    gen_flags: ArrayRef

    def materialize(self) -> EncodedFlows:
        """Attach and return zero-copy views as a real EncodedFlows."""
        return EncodedFlows(
            metadata=attach_array(self.metadata),
            measurements=attach_array(self.measurements),
            gen_flags=attach_array(self.gen_flags),
        )

    def __len__(self) -> int:
        return int(self.metadata.shape[0])


# Blocks created by arenas in *this* process: attaching to one of our
# own blocks reuses the creator's mapping instead of opening a second
# handle (and keeps the resource tracker's books balanced).
_OWNED_BLOCKS: Dict[str, shared_memory.SharedMemory] = {}
# Blocks this process attached to (worker side): one mapping per name,
# kept alive for the process lifetime so views never dangle.
_ATTACHED_BLOCKS: Dict[str, shared_memory.SharedMemory] = {}


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Undo the resource tracker's registration of an *attached*
    segment (Python < 3.13 tracks attachments as ownership)."""
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


def attach_array(ref: ArrayRef) -> np.ndarray:
    """Return a zero-copy numpy view onto the referenced shared block."""
    block = _OWNED_BLOCKS.get(ref.name)
    if block is None:
        block = _ATTACHED_BLOCKS.get(ref.name)
        if block is None:
            block = shared_memory.SharedMemory(name=ref.name)
            _untrack(block)
            _ATTACHED_BLOCKS[ref.name] = block
    return np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=block.buf)


def read_shared_bytes(ref: ArrayRef) -> bytes:
    """Copy a byte-blob (uint8 block) out of shared memory."""
    return attach_array(ref).tobytes()


def block_exists(name: str) -> bool:
    """True if the named block is still linked (used by lifecycle tests)."""
    if name in _OWNED_BLOCKS:
        return True
    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    _untrack(probe)
    probe.close()
    return True


def detach_all() -> None:
    """Drop this process's attachment cache (test/teardown helper)."""
    for block in _ATTACHED_BLOCKS.values():
        try:
            block.close()
        except BufferError:
            pass  # a view still references the buffer; leave it mapped
    _ATTACHED_BLOCKS.clear()


def _release(blocks: Dict[str, shared_memory.SharedMemory]) -> None:
    """Unlink + close a set of owned blocks (module-level so the
    weakref finalizer holds no reference to the arena itself)."""
    for name, block in list(blocks.items()):
        _OWNED_BLOCKS.pop(name, None)
        try:
            block.unlink()
        except FileNotFoundError:
            pass
        try:
            block.close()
        except BufferError:
            pass  # dangling view; memory is reclaimed when it dies
    blocks.clear()


class SharedArena:
    """Owns a family of shared-memory blocks with guaranteed unlink.

    Use as a context manager around an ``Executor.map_tasks`` call::

        with SharedArena() as arena:
            ref = arena.share_array(encoded.metadata)
            ...
            executor.map_tasks(train_chunk, tasks)
        # every block is unlinked here, whatever happened above
    """

    def __init__(self, prefix: str = "repro"):
        self._prefix = prefix
        self._blocks: Dict[str, shared_memory.SharedMemory] = {}
        # Staged payload bytes per block (ArrayRef.nbytes, NOT the OS
        # block size: that is floored at 1 byte for empty arrays and
        # page-rounded on some platforms, which would skew the
        # dispatch-byte metric in BENCH_runtime.json).
        self._nbytes: Dict[str, int] = {}
        self._finalizer = weakref.finalize(self, _release, self._blocks)

    # -- creation ------------------------------------------------------
    def share_array(self, array: np.ndarray) -> ArrayRef:
        """Copy ``array`` into a new shared block; return its manifest."""
        array = np.ascontiguousarray(array)
        name = f"{self._prefix}_{token_hex(8)}"
        block = shared_memory.SharedMemory(
            name=name, create=True, size=max(int(array.nbytes), 1))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
        view[...] = array
        self._blocks[name] = block
        _OWNED_BLOCKS[name] = block
        ref = ArrayRef(name=name, shape=tuple(array.shape),
                       dtype=array.dtype.str)
        self._nbytes[name] = ref.nbytes
        if STATE.enabled:
            STATE.registry.counter("shm.bytes_staged").inc(ref.nbytes)
            STATE.registry.counter("shm.blocks_staged").inc()
            emit_event("shm_stage", name=name, nbytes=ref.nbytes,
                       shape=list(ref.shape), dtype=ref.dtype)
        return ref

    def share_bytes(self, payload: bytes) -> ArrayRef:
        """Place an opaque byte-blob (e.g. a pickled state) in a block."""
        return self.share_array(np.frombuffer(payload, dtype=np.uint8))

    def share_encoded(self, encoded: EncodedFlows) -> SharedEncodedFlows:
        """Move a chunk's three tensors into the arena."""
        return SharedEncodedFlows(
            metadata=self.share_array(encoded.metadata),
            measurements=self.share_array(encoded.measurements),
            gen_flags=self.share_array(encoded.gen_flags),
        )

    # -- introspection -------------------------------------------------
    @property
    def block_names(self):
        return tuple(self._blocks)

    @property
    def shared_bytes(self) -> int:
        """Total *staged payload* bytes currently resident: the sum of
        every live block's ``ArrayRef.nbytes``.  Matches what workers
        can actually attach, independent of OS block-size rounding."""
        return sum(self._nbytes.get(name, 0) for name in self._blocks)

    # -- lifecycle -----------------------------------------------------
    def drop(self, ref: Union["ArrayRef", str]) -> None:
        """Unlink and release one block early (LRU eviction in the
        remote worker host's blob store).  Same-process views created
        before the drop stay valid — POSIX keeps unlinked memory alive
        while mapped — but new attaches by name will fail."""
        name = ref.name if isinstance(ref, ArrayRef) else str(ref)
        block = self._blocks.pop(name, None)
        self._nbytes.pop(name, None)
        if block is None:
            return
        _OWNED_BLOCKS.pop(name, None)
        try:
            block.unlink()
        except FileNotFoundError:
            pass
        try:
            block.close()
        except BufferError:
            pass  # dangling view; memory reclaimed when it dies

    def close(self) -> None:
        """Unlink and release every block (idempotent)."""
        if self._blocks and STATE.enabled:
            emit_event("shm_unlink", blocks=len(self._blocks),
                       nbytes=self.shared_bytes)
        _release(self._blocks)

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def maybe_arena(executor) -> "SharedArena | _NullArena":
    """An open arena if the executor wants shared memory, else a no-op
    stand-in — lets call sites use one ``with`` either way."""
    if getattr(executor, "uses_shared_memory", False):
        return SharedArena()
    return _NullArena()


class _NullArena:
    """Context-manager stand-in when the backend doesn't use shm."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


# Re-exported here to keep pickle out of call sites that only want to
# size a payload for the manifest path.
def pickled_size(obj) -> int:
    """Bytes this object would occupy on the worker pipe."""
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
