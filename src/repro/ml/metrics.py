"""Classifier evaluation metrics."""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["accuracy_score", "confusion_matrix", "macro_f1_score"]


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = np.asarray(y_true), np.asarray(y_pred)
    if len(y_true) != len(y_pred):
        raise ValueError("label vectors must be aligned")
    if len(y_true) == 0:
        raise ValueError("cannot score an empty prediction")
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    y_true, y_pred = np.asarray(y_true), np.asarray(y_pred)
    classes = np.unique(np.concatenate([y_true, y_pred]))
    index = {c: i for i, c in enumerate(classes)}
    matrix = np.zeros((len(classes), len(classes)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return matrix


def macro_f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    matrix = confusion_matrix(y_true, y_pred)
    f1s = []
    for k in range(len(matrix)):
        tp = matrix[k, k]
        fp = matrix[:, k].sum() - tp
        fn = matrix[k, :].sum() - tp
        denom = 2 * tp + fp + fn
        f1s.append(2 * tp / denom if denom else 0.0)
    return float(np.mean(f1s))
