"""Feature preprocessing helpers for the classifier suite."""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler", "train_features_flow"]


class StandardScaler:
    """Standardise features to zero mean / unit variance."""

    def __init__(self):
        self.mean_ = None
        self.scale_ = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=np.float64)
        self.mean_ = x.mean(axis=0)
        scale = x.std(axis=0)
        scale[scale == 0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted; call fit() first")
        return (np.asarray(x, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)


def train_features_flow(trace) -> np.ndarray:
    """The prediction-task feature set from §6.2 Finding 2: port number,
    protocol, bytes/flow, packets/flow, and flow duration.  Counts are
    log-scaled to tame their heavy tails."""
    return np.column_stack([
        trace.dst_port.astype(np.float64),
        trace.src_port.astype(np.float64),
        trace.protocol.astype(np.float64),
        np.log1p(trace.bytes.astype(np.float64)),
        np.log1p(trace.packets.astype(np.float64)),
        np.log1p(trace.duration.astype(np.float64)),
    ])
