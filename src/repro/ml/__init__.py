"""Classifier substrate (scratch implementations of the five models the
prediction task uses, plus the OCSVM the anomaly-detection task uses).

The paper's Fig 12 evaluates Decision Tree, Logistic Regression,
Random Forest, Gradient Boosting and MLP; :data:`CLASSIFIER_FACTORIES`
builds all five with task-appropriate defaults.
"""

from typing import Callable, Dict

from .boosting import GradientBoostingClassifier
from .forest import RandomForestClassifier
from .linear import LogisticRegression
from .metrics import accuracy_score, confusion_matrix, macro_f1_score
from .mlp import MLPClassifier
from .ocsvm import OneClassSVM
from .preprocessing import StandardScaler, train_features_flow
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

#: Factories for the five Fig-12 classifiers, keyed by the paper's
#: abbreviations.
CLASSIFIER_FACTORIES: Dict[str, Callable] = {
    "DT": lambda: DecisionTreeClassifier(max_depth=8),
    "LR": lambda: LogisticRegression(n_iter=250),
    "RF": lambda: RandomForestClassifier(n_estimators=15, max_depth=8),
    "GB": lambda: GradientBoostingClassifier(n_estimators=20, max_depth=3),
    "MLP": lambda: MLPClassifier(hidden=(32, 16), n_epochs=30),
}

__all__ = [
    "DecisionTreeClassifier", "DecisionTreeRegressor",
    "RandomForestClassifier", "GradientBoostingClassifier",
    "LogisticRegression", "MLPClassifier", "OneClassSVM",
    "StandardScaler", "train_features_flow",
    "accuracy_score", "confusion_matrix", "macro_f1_score",
    "CLASSIFIER_FACTORIES",
]
