"""Gradient boosting classifier (the 'GB' model of Fig 12).

Multiclass gradient boosting with softmax loss: each round fits one
regression tree per class to the negative gradient (residual between
one-hot targets and current softmax probabilities), as in Friedman's
original formulation.
"""

from __future__ import annotations

import numpy as np

from .tree import DecisionTreeRegressor

__all__ = ["GradientBoostingClassifier"]


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=1, keepdims=True)


class GradientBoostingClassifier:
    def __init__(self, n_estimators: int = 30, learning_rate: float = 0.2,
                 max_depth: int = 3, seed: int = 0):
        if n_estimators < 1:
            raise ValueError("need at least one boosting round")
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.seed = seed
        self.stages_ = []  # list of per-class tree lists

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self.classes_ = np.unique(y)
        n_classes = len(self.classes_)
        index = {c: i for i, c in enumerate(self.classes_)}
        onehot = np.zeros((len(y), n_classes))
        onehot[np.arange(len(y)), [index[v] for v in y]] = 1.0

        # Initial log-odds from the class priors.
        priors = onehot.mean(axis=0)
        self.base_score_ = np.log(np.clip(priors, 1e-9, None))
        logits = np.tile(self.base_score_, (len(y), 1))

        self.stages_ = []
        for m in range(self.n_estimators):
            probs = _softmax(logits)
            residuals = onehot - probs
            stage = []
            for k in range(n_classes):
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth,
                    rng=np.random.default_rng(self.seed + m * 97 + k),
                )
                tree.fit(x, residuals[:, k])
                update = tree.predict(x)
                logits[:, k] += self.learning_rate * update
                stage.append(tree)
            self.stages_.append(stage)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if not self.stages_:
            raise RuntimeError("model is not fitted; call fit() first")
        x = np.asarray(x, dtype=np.float64)
        logits = np.tile(self.base_score_, (len(x), 1))
        for stage in self.stages_:
            for k, tree in enumerate(stage):
                logits[:, k] += self.learning_rate * tree.predict(x)
        return logits

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return _softmax(self.decision_function(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.classes_[self.decision_function(x).argmax(axis=1)]
