"""Multi-layer perceptron classifier (the 'MLP' model of Fig 12),
built on the repo's autograd substrate."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..nn import Adam, Dense, Sequential, cross_entropy, grad, no_grad, tensor

__all__ = ["MLPClassifier"]


class MLPClassifier:
    def __init__(self, hidden: Tuple[int, ...] = (32, 16), lr: float = 0.01,
                 n_epochs: int = 60, batch_size: int = 64, seed: int = 0):
        if n_epochs < 1:
            raise ValueError("need at least one epoch")
        self.hidden = tuple(hidden)
        self.lr = lr
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.seed = seed
        self._net = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self.classes_ = np.unique(y)
        index = {c: i for i, c in enumerate(self.classes_)}
        encoded = np.array([index[v] for v in y])

        rng = np.random.default_rng(self.seed)
        sizes = (x.shape[1],) + self.hidden + (len(self.classes_),)
        layers = []
        for i in range(len(sizes) - 1):
            activation = "relu" if i < len(sizes) - 2 else "linear"
            layers.append(Dense(sizes[i], sizes[i + 1], activation=activation,
                                rng=rng))
        self._net = Sequential(*layers)
        params = self._net.parameters()
        opt = Adam(params, lr=self.lr, beta1=0.9)

        n = len(x)
        for _ in range(self.n_epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start:start + self.batch_size]
                loss = cross_entropy(self._net(tensor(x[idx])), encoded[idx])
                opt.step(grad(loss, params))
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self._net is None:
            raise RuntimeError("model is not fitted; call fit() first")
        with no_grad():
            logits = self._net(tensor(np.asarray(x, dtype=np.float64))).data
        shifted = logits - logits.max(axis=1, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=1, keepdims=True)

    def predict(self, x: np.ndarray) -> np.ndarray:
        probs = self.predict_proba(x)
        return self.classes_[probs.argmax(axis=1)]
