"""Random forest classifier (the 'RF' model of Fig 12)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier:
    """Bagged CART trees with per-split feature subsampling."""

    def __init__(self, n_estimators: int = 20, max_depth: int = 8,
                 min_samples_split: int = 2,
                 max_features: Optional[str] = "sqrt", seed: int = 0):
        if n_estimators < 1:
            raise ValueError("need at least one tree")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self.trees_ = []

    def _resolve_max_features(self, n_features: int) -> Optional[int]:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(self.max_features, int):
            return min(self.max_features, n_features)
        raise ValueError(f"unsupported max_features {self.max_features!r}")

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        rng = np.random.default_rng(self.seed)
        self.classes_ = np.unique(y)
        max_features = self._resolve_max_features(x.shape[1])
        self.trees_ = []
        for i in range(self.n_estimators):
            idx = rng.integers(0, len(x), size=len(x))  # bootstrap sample
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=max_features,
                rng=np.random.default_rng(self.seed + 1000 + i),
            )
            tree.fit(x[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("model is not fitted; call fit() first")
        total = np.zeros((len(x), len(self.classes_)))
        for tree in self.trees_:
            # Trees may have seen a subset of classes in their bootstrap;
            # align their probability columns to the forest's classes.
            probs = tree.predict_proba(x)
            cols = np.searchsorted(self.classes_, tree.classes_)
            total[:, cols] += probs
        return total / len(self.trees_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.classes_[self.predict_proba(x).argmax(axis=1)]
