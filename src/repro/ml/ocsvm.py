"""One-class SVM for anomaly detection (NetML's default detector, §6.2
Finding 2, App #3).

Implements Schölkopf's ν-one-class SVM in the primal::

    min  1/2 ||w||^2 - rho + 1/(nu*n) * sum_i max(0, rho - <w, phi(x_i)>)

optimised by averaged SGD.  ``phi`` is either the identity (linear) or
a random Fourier feature map approximating the RBF kernel, which keeps
the model linear-time at our scale.  The ν parameter upper-bounds the
training outlier fraction, which the tests verify empirically.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["OneClassSVM"]


class OneClassSVM:
    def __init__(self, nu: float = 0.1, kernel: str = "rbf", gamma: float = 0.5,
                 n_components: int = 100, n_epochs: int = 40, lr: float = 0.05,
                 seed: int = 0):
        if not 0 < nu <= 1:
            raise ValueError("nu must be in (0, 1]")
        if kernel not in ("linear", "rbf"):
            raise ValueError(f"unsupported kernel {kernel!r}")
        self.nu = nu
        self.kernel = kernel
        self.gamma = gamma
        self.n_components = n_components
        self.n_epochs = n_epochs
        self.lr = lr
        self.seed = seed
        self._w: Optional[np.ndarray] = None
        self._rho: float = 0.0
        self._rff_w = None
        self._rff_b = None

    # ------------------------------------------------------------------
    def _feature_map(self, x: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return x
        if self._rff_w is None:
            raise RuntimeError("model is not fitted; call fit() first")
        projection = x @ self._rff_w + self._rff_b
        return np.sqrt(2.0 / self.n_components) * np.cos(projection)

    def fit(self, x: np.ndarray) -> "OneClassSVM":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or len(x) == 0:
            raise ValueError("x must be a non-empty 2-D array")
        rng = np.random.default_rng(self.seed)
        if self.kernel == "rbf":
            # Random Fourier features for k(x,y)=exp(-gamma ||x-y||^2):
            # w ~ N(0, 2*gamma*I), b ~ U[0, 2pi).
            self._rff_w = rng.normal(
                0.0, np.sqrt(2.0 * self.gamma), size=(x.shape[1], self.n_components)
            )
            self._rff_b = rng.uniform(0.0, 2 * np.pi, size=self.n_components)
        phi = self._feature_map(x)
        n, d = phi.shape
        w = np.zeros(d)
        rho = 0.0
        inv_nu_n = 1.0 / (self.nu * n)

        step = self.lr
        w_avg, rho_avg, n_avg = np.zeros(d), 0.0, 0
        for epoch in range(self.n_epochs):
            order = rng.permutation(n)
            for i in order:
                margin = phi[i] @ w - rho
                grad_w = w.copy()
                grad_rho = -1.0
                if margin < 0:  # hinge active
                    grad_w -= inv_nu_n * n * phi[i]  # per-sample scaled
                    grad_rho += inv_nu_n * n
                w -= step * grad_w / n
                rho -= step * grad_rho / n
            # Polyak averaging over the last half of training.
            if epoch >= self.n_epochs // 2:
                w_avg += w
                rho_avg += rho
                n_avg += 1
        if n_avg:
            w, rho = w_avg / n_avg, rho_avg / n_avg
        self._w, self._rho = w, rho
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Positive = inlier, negative = anomaly."""
        if self._w is None:
            raise RuntimeError("model is not fitted; call fit() first")
        phi = self._feature_map(np.asarray(x, dtype=np.float64))
        return phi @ self._w - self._rho

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Return +1 for inliers, -1 for anomalies (sklearn convention)."""
        return np.where(self.decision_function(x) >= 0, 1, -1)

    def anomaly_ratio(self, x: np.ndarray) -> float:
        """Fraction of samples flagged anomalous — the statistic the
        NetML task compares between real and synthetic data (Fig 14)."""
        return float((self.predict(x) == -1).mean())
