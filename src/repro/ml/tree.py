"""CART decision trees (classification and regression) from scratch.

These are the 'DT' model of the paper's traffic-type prediction task
(Fig 12) and the base learners for the random forest and gradient
boosting models.  Split search is vectorised per feature: candidate
thresholds are midpoints between consecutive sorted unique values and
impurities are computed from cumulative class counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["DecisionTreeClassifier", "DecisionTreeRegressor"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: Optional[np.ndarray] = None  # class probs or scalar prediction

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split_gini(x: np.ndarray, y: np.ndarray, n_classes: int,
                     feature_indices: np.ndarray):
    """Return (feature, threshold, gain) of the best Gini split, or None."""
    n = len(y)
    counts_total = np.bincount(y, minlength=n_classes).astype(np.float64)
    gini_parent = 1.0 - ((counts_total / n) ** 2).sum()
    best = None
    best_gain = 1e-12
    for f in feature_indices:
        order = np.argsort(x[:, f], kind="mergesort")
        xf, yf = x[order, f], y[order]
        # one-hot cumulative class counts at each prefix
        onehot = np.zeros((n, n_classes))
        onehot[np.arange(n), yf] = 1.0
        left_counts = np.cumsum(onehot, axis=0)
        # valid split positions: between distinct consecutive values
        distinct = xf[1:] != xf[:-1]
        if not distinct.any():
            continue
        positions = np.nonzero(distinct)[0]  # split after index i
        nl = (positions + 1).astype(np.float64)
        nr = n - nl
        lc = left_counts[positions]
        rc = counts_total - lc
        gini_left = 1.0 - ((lc / nl[:, None]) ** 2).sum(axis=1)
        gini_right = 1.0 - ((rc / nr[:, None]) ** 2).sum(axis=1)
        weighted = (nl * gini_left + nr * gini_right) / n
        gains = gini_parent - weighted
        i = int(np.argmax(gains))
        if gains[i] > best_gain:
            best_gain = gains[i]
            pos = positions[i]
            best = (int(f), float((xf[pos] + xf[pos + 1]) / 2.0), float(gains[i]))
    return best


def _best_split_mse(x: np.ndarray, y: np.ndarray, feature_indices: np.ndarray):
    """Return (feature, threshold, gain) minimising weighted variance."""
    n = len(y)
    total_sum, total_sq = y.sum(), (y**2).sum()
    var_parent = total_sq / n - (total_sum / n) ** 2
    best = None
    best_gain = 1e-12
    for f in feature_indices:
        order = np.argsort(x[:, f], kind="mergesort")
        xf, yf = x[order, f], y[order]
        csum = np.cumsum(yf)
        csq = np.cumsum(yf**2)
        distinct = xf[1:] != xf[:-1]
        if not distinct.any():
            continue
        positions = np.nonzero(distinct)[0]
        nl = (positions + 1).astype(np.float64)
        nr = n - nl
        sl, sql = csum[positions], csq[positions]
        sr, sqr = total_sum - sl, total_sq - sql
        var_left = sql / nl - (sl / nl) ** 2
        var_right = sqr / nr - (sr / nr) ** 2
        weighted = (nl * var_left + nr * var_right) / n
        gains = var_parent - weighted
        i = int(np.argmax(gains))
        if gains[i] > best_gain:
            best_gain = gains[i]
            pos = positions[i]
            best = (int(f), float((xf[pos] + xf[pos + 1]) / 2.0), float(gains[i]))
    return best


class _BaseTree:
    def __init__(self, max_depth: int = 8, min_samples_split: int = 2,
                 max_features: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.max_features = max_features
        self.rng = rng or np.random.default_rng(0)
        self._root: Optional[_Node] = None
        self.n_features_: Optional[int] = None

    def _feature_subset(self, n_features: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= n_features:
            return np.arange(n_features)
        return self.rng.choice(n_features, size=self.max_features, replace=False)

    def _check_fitted(self):
        if self._root is None:
            raise RuntimeError("model is not fitted; call fit() first")

    def _predict_leaf(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.n_features_:
            raise ValueError("prediction input has the wrong shape")
        out = np.empty((len(x),) + self._root.value.shape)
        # Iterative traversal grouped by node keeps this vectorised-ish.
        stack = [(self._root, np.arange(len(x)))]
        while stack:
            node, idx = stack.pop()
            if len(idx) == 0:
                continue
            if node.is_leaf:
                out[idx] = node.value
                continue
            go_left = x[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[go_left]))
            stack.append((node.right, idx[~go_left]))
        return out


class DecisionTreeClassifier(_BaseTree):
    """Gini-impurity CART classifier."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if len(x) != len(y) or len(x) == 0:
            raise ValueError("x and y must be non-empty and aligned")
        self.classes_ = np.unique(y)
        self._class_index = {c: i for i, c in enumerate(self.classes_)}
        encoded = np.array([self._class_index[v] for v in y])
        self.n_features_ = x.shape[1]
        self._root = self._grow(x, encoded, depth=0)
        return self

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y, minlength=len(self.classes_)).astype(np.float64)
        return counts / counts.sum()

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=self._leaf_value(y))
        if (depth >= self.max_depth or len(y) < self.min_samples_split
                or len(np.unique(y)) == 1):
            return node
        split = _best_split_gini(
            x, y, len(self.classes_), self._feature_subset(x.shape[1])
        )
        if split is None:
            return node
        feature, threshold, _ = split
        mask = x[:, feature] <= threshold
        if mask.all() or not mask.any():
            return node
        node.feature, node.threshold = feature, threshold
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return self._predict_leaf(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        probs = self.predict_proba(x)
        return self.classes_[probs.argmax(axis=1)]


class DecisionTreeRegressor(_BaseTree):
    """Variance-reduction CART regressor (gradient boosting base learner)."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(x) != len(y) or len(x) == 0:
            raise ValueError("x and y must be non-empty and aligned")
        self.n_features_ = x.shape[1]
        self._root = self._grow(x, y, depth=0)
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=np.array(y.mean()))
        if depth >= self.max_depth or len(y) < self.min_samples_split:
            return node
        split = _best_split_mse(x, y, self._feature_subset(x.shape[1]))
        if split is None:
            return node
        feature, threshold, _ = split
        mask = x[:, feature] <= threshold
        if mask.all() or not mask.any():
            return node
        node.feature, node.threshold = feature, threshold
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self._predict_leaf(x).reshape(len(x))
