"""Multinomial logistic regression (the 'LR' model of Fig 12).

Softmax regression trained by full-batch gradient descent with L2
regularisation; inputs should be standardised (see
:class:`repro.ml.preprocessing.StandardScaler`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["LogisticRegression"]


class LogisticRegression:
    def __init__(self, lr: float = 0.5, n_iter: int = 300, l2: float = 1e-4,
                 seed: int = 0):
        if n_iter < 1:
            raise ValueError("need at least one iteration")
        self.lr = lr
        self.n_iter = n_iter
        self.l2 = l2
        self.seed = seed
        self.weights_ = None
        self.bias_ = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self.classes_ = np.unique(y)
        n_classes = len(self.classes_)
        index = {c: i for i, c in enumerate(self.classes_)}
        onehot = np.zeros((len(y), n_classes))
        onehot[np.arange(len(y)), [index[v] for v in y]] = 1.0

        rng = np.random.default_rng(self.seed)
        self.weights_ = rng.normal(0, 0.01, size=(x.shape[1], n_classes))
        self.bias_ = np.zeros(n_classes)
        n = len(x)
        for _ in range(self.n_iter):
            probs = self._softmax(x @ self.weights_ + self.bias_)
            error = probs - onehot
            grad_w = x.T @ error / n + self.l2 * self.weights_
            grad_b = error.mean(axis=0)
            self.weights_ -= self.lr * grad_w
            self.bias_ -= self.lr * grad_b
        return self

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=1, keepdims=True)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        x = np.asarray(x, dtype=np.float64)
        return self._softmax(x @ self.weights_ + self.bias_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        probs = self.predict_proba(x)
        return self.classes_[probs.argmax(axis=1)]
