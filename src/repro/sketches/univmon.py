"""UnivMon (Liu et al., SIGCOMM 2016) — 'UnivMon' in Fig 13.

Universal monitoring keeps L levels of Count Sketches; level l sees
only keys whose hash has l leading one-bits (each level halves the
substream).  G-sum statistics are computed bottom-up via the universal
sketching recursion; for heavy-hitter *count estimation* (the Fig 13
task) we estimate a key's frequency from the deepest level that sampled
it, which is the standard UnivMon HH procedure.
"""

from __future__ import annotations

import numpy as np

from .base import Sketch, UniversalHash, mix64
from .countsketch import CountSketch

__all__ = ["UnivMonSketch"]


class UnivMonSketch(Sketch):
    def __init__(self, width: int = 512, depth: int = 5, levels: int = 4,
                 seed: int = 0):
        if levels < 1:
            raise ValueError("need at least one level")
        self.levels = levels
        self.sketches = [
            CountSketch(width=width, depth=depth, seed=seed + 31 * l)
            for l in range(levels)
        ]
        self._sample_seed = np.uint64(seed * 2654435761 + 97)

    def _level_mask(self, keys: np.ndarray, level: int) -> np.ndarray:
        """Keys sampled into `level`: hash has `level` leading one-bits."""
        if level == 0:
            return np.ones(len(keys), dtype=bool)
        h = mix64(np.asarray(keys, dtype=np.uint64) + self._sample_seed)
        top_bits = (h >> np.uint64(64 - level)).astype(np.uint64)
        return top_bits == np.uint64((1 << level) - 1)

    def update_many(self, keys: np.ndarray, counts=None) -> None:
        keys = np.asarray(keys, dtype=np.uint64)
        if counts is None:
            counts = np.ones(len(keys), dtype=np.float64)
        for level, sketch in enumerate(self.sketches):
            mask = self._level_mask(keys, level)
            if mask.any():
                sketch.update_many(keys[mask], counts[mask])

    def estimate_many(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        estimates = self.sketches[0].estimate_many(keys)
        # Refine with deeper levels: a deeper level holds a sparser
        # substream, so its estimate for a sampled heavy key has less
        # collision noise. Use the deepest level that sampled the key.
        for level in range(1, self.levels):
            mask = self._level_mask(keys, level)
            if mask.any():
                deeper = self.sketches[level].estimate_many(keys[mask])
                estimates[mask] = deeper
        return estimates

    def gsum(self, candidate_keys: np.ndarray, g=np.abs) -> float:
        """Estimate sum_i g(f_i) via the universal sketching recursion,
        using ``candidate_keys`` as each level's heavy-hitter set."""
        candidate_keys = np.asarray(candidate_keys, dtype=np.uint64)
        # Bottom level: Y_L = sum of g over its sampled heavy hitters.
        values = None
        for level in reversed(range(self.levels)):
            mask = self._level_mask(candidate_keys, level)
            hh = candidate_keys[mask]
            freq = self.sketches[level].estimate_many(hh) if len(hh) else np.array([])
            contribution = float(np.sum(g(freq))) if len(hh) else 0.0
            if values is None:
                values = contribution
            else:
                # Y_l = 2*Y_{l+1} + sum_{hh in level l} (1 - 2*sampled(hh)) g(f)
                sampled_deeper = self._level_mask(hh, level + 1)
                correction = float(
                    np.sum((1.0 - 2.0 * sampled_deeper) * g(freq))
                ) if len(hh) else 0.0
                values = 2.0 * values + correction
        return float(values)

    @property
    def memory_counters(self) -> int:
        return sum(s.memory_counters for s in self.sketches)
