"""NitroSketch (Liu et al., SIGCOMM 2019) — 'NitroSketch' in Fig 13.

NitroSketch accelerates software-switch sketching by updating each row
independently with probability ``p`` and scaling the increment by
``1/p``, keeping the estimator unbiased while touching far fewer
counters per packet.  We implement the Count-Sketch-based variant from
the paper.
"""

from __future__ import annotations

import numpy as np

from .base import Sketch, UniversalHash

__all__ = ["NitroSketch"]


class NitroSketch(Sketch):
    def __init__(self, width: int = 1024, depth: int = 5,
                 sample_probability: float = 0.25, seed: int = 0):
        if not 0 < sample_probability <= 1:
            raise ValueError("sample probability must be in (0, 1]")
        self.hash = UniversalHash(width, depth, seed)
        self.table = np.zeros((depth, width), dtype=np.float64)
        self.p = sample_probability
        self._rng = np.random.default_rng(seed + 1)

    def update_many(self, keys: np.ndarray, counts=None) -> None:
        keys = np.asarray(keys, dtype=np.uint64)
        if counts is None:
            counts = np.ones(len(keys), dtype=np.float64)
        buckets = self.hash.bucket(keys)
        scale = 1.0 / self.p
        for row in range(self.hash.depth):
            # Geometric skipping in the original; Bernoulli thinning is
            # statistically identical for our batched updates.
            chosen = self._rng.uniform(size=len(keys)) < self.p
            if not chosen.any():
                continue
            signs = self.hash.sign(keys[chosen], row)
            np.add.at(
                self.table[row], buckets[row][chosen],
                signs * counts[chosen] * scale,
            )

    def estimate_many(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        buckets = self.hash.bucket(keys)
        estimates = np.stack([
            self.hash.sign(keys, row) * self.table[row, buckets[row]]
            for row in range(self.hash.depth)
        ])
        return np.median(estimates, axis=0)

    @property
    def memory_counters(self) -> int:
        return self.table.size
