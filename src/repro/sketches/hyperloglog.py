"""HyperLogLog cardinality estimator.

Distinct-counting underpins several of the paper's downstream settings
(port-scan detection counts distinct destination ports; superspreader
detection counts distinct peers).  A synthetic trace is only useful
for those tasks if its *cardinality structure* survives — the
fingerprint this estimator measures.
"""

from __future__ import annotations

import numpy as np

from .base import mix64

__all__ = ["HyperLogLog", "distinct_count"]


class HyperLogLog:
    """Flajolet et al. 2007, with the standard small-range correction."""

    def __init__(self, precision: int = 10, seed: int = 0):
        if not 4 <= precision <= 16:
            raise ValueError("precision must be in [4, 16]")
        self.precision = precision
        self.m = 1 << precision
        self.registers = np.zeros(self.m, dtype=np.int64)
        self._salt = np.uint64(seed * 0x9E3779B97F4A7C15 + 0x1234)
        # Bias-correction constant alpha_m.
        if self.m == 16:
            self.alpha = 0.673
        elif self.m == 32:
            self.alpha = 0.697
        elif self.m == 64:
            self.alpha = 0.709
        else:
            self.alpha = 0.7213 / (1.0 + 1.079 / self.m)

    def add_many(self, keys: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=np.uint64)
        h = mix64(keys + self._salt)
        buckets = (h >> np.uint64(64 - self.precision)).astype(np.int64)
        remainder = h << np.uint64(self.precision)
        # Number of leading zeros in the remaining 64-p bits, + 1.
        width = 64 - self.precision
        ranks = np.full(len(keys), width + 1, dtype=np.int64)
        nonzero = remainder != 0
        if nonzero.any():
            # leading zeros of a u64 = 63 - floor(log2(x))
            bits = np.floor(np.log2(remainder[nonzero].astype(np.float64)))
            lz = 63 - bits.astype(np.int64)
            ranks[nonzero] = np.minimum(lz + 1, width + 1)
        np.maximum.at(self.registers, buckets, ranks)

    def add(self, key: int) -> None:
        self.add_many(np.array([key], dtype=np.uint64))

    def estimate(self) -> float:
        inv_sum = np.sum(2.0 ** -self.registers)
        raw = self.alpha * self.m * self.m / inv_sum
        zeros = int((self.registers == 0).sum())
        if raw <= 2.5 * self.m and zeros > 0:
            # Small-range (linear counting) correction.
            return float(self.m * np.log(self.m / zeros))
        return float(raw)


def distinct_count(keys: np.ndarray, precision: int = 12,
                   seed: int = 0) -> float:
    """One-shot HLL distinct count of an array of integer keys."""
    hll = HyperLogLog(precision=precision, seed=seed)
    hll.add_many(np.asarray(keys, dtype=np.uint64))
    return hll.estimate()
