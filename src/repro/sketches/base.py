"""Shared machinery for sketch data structures.

All sketches hash 64-bit integer keys (IPs, or mixed five-tuple hashes)
with multiply-shift universal hashing.  Each sketch exposes
``update(key, count)``, ``update_many(keys)`` and ``estimate(key)``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["Sketch", "UniversalHash", "mix64"]

_MASK64 = (1 << 64) - 1


def mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finaliser: decorrelate structured integer keys."""
    x = np.asarray(x, dtype=np.uint64).copy()
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x &= np.uint64(_MASK64)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x &= np.uint64(_MASK64)
    x ^= x >> np.uint64(31)
    return x


class UniversalHash:
    """A family of multiply-shift hash functions h: u64 -> [0, width)."""

    def __init__(self, width: int, depth: int, seed: int):
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be positive")
        rng = np.random.default_rng(seed)
        # Odd multipliers for multiply-shift hashing.
        self.multipliers = (
            rng.integers(1, _MASK64, size=depth, dtype=np.uint64) | np.uint64(1)
        )
        self.offsets = rng.integers(0, _MASK64, size=depth, dtype=np.uint64)
        self.width = width
        self.depth = depth

    def bucket(self, keys: np.ndarray) -> np.ndarray:
        """Return (depth, n) bucket indices for keys."""
        mixed = mix64(keys)
        h = (mixed[None, :] * self.multipliers[:, None] + self.offsets[:, None])
        h &= np.uint64(_MASK64)
        return ((h >> np.uint64(33)) % np.uint64(self.width)).astype(np.int64)

    def sign(self, keys: np.ndarray, row: int) -> np.ndarray:
        """Return ±1 signs for keys (used by Count Sketch)."""
        mixed = mix64(np.asarray(keys, dtype=np.uint64) + np.uint64(row * 7919 + 13))
        return np.where((mixed & np.uint64(1)) == 1, 1.0, -1.0)


class Sketch:
    """Abstract frequency sketch over integer keys."""

    def update(self, key: int, count: float = 1.0) -> None:
        self.update_many(np.array([key], dtype=np.uint64),
                         np.array([count], dtype=np.float64))

    def update_many(self, keys: np.ndarray, counts=None) -> None:
        raise NotImplementedError

    def estimate(self, key: int) -> float:
        return float(self.estimate_many(np.array([key], dtype=np.uint64))[0])

    def estimate_many(self, keys: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def memory_counters(self) -> int:
        """Number of counters the sketch occupies (for memory parity)."""
        raise NotImplementedError
