"""Sketch-based telemetry substrate (Fig 13's four algorithms)."""

from .base import Sketch, UniversalHash, mix64
from .countmin import CountMinSketch
from .countsketch import CountSketch
from .nitrosketch import NitroSketch
from .univmon import UnivMonSketch
from .elastic import ElasticSketch
from .hyperloglog import HyperLogLog, distinct_count
from .heavyhitter import (
    SKETCH_FACTORIES,
    exact_counts,
    extract_keys,
    heavy_hitter_estimation_error,
    heavy_hitters,
    relative_error_between_traces,
)

__all__ = [
    "Sketch", "UniversalHash", "mix64",
    "CountMinSketch", "CountSketch", "NitroSketch", "UnivMonSketch",
    "ElasticSketch", "HyperLogLog", "distinct_count",
    "SKETCH_FACTORIES", "exact_counts", "extract_keys", "heavy_hitters",
    "heavy_hitter_estimation_error", "relative_error_between_traces",
]
