"""Heavy-hitter estimation harness (the Fig 13 downstream task).

The paper: "a typical downstream task of heavy hitter count
estimation... The threshold for heavy hitters is set at 0.1% with all
four sketches using roughly the same memory."  We compute, per sketch,
the error of heavy-hitter count estimation on a trace, then the Fig 13
statistic ``|error_syn - error_real| / error_real`` between real and
synthetic traces.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from ..datasets.records import FlowTrace, PacketTrace
from .base import Sketch, mix64
from .countmin import CountMinSketch
from .countsketch import CountSketch
from .nitrosketch import NitroSketch
from .univmon import UnivMonSketch

__all__ = [
    "SKETCH_FACTORIES",
    "extract_keys",
    "exact_counts",
    "heavy_hitters",
    "heavy_hitter_estimation_error",
    "relative_error_between_traces",
]

#: Fig 13's four sketching algorithms with roughly equal memory
#: (counter count parity, as in the paper's setup).  ``scale`` shrinks
#: or grows every sketch's width proportionally so memory pressure can
#: be matched to the stream size: the paper runs 1M-record streams
#: against KB-scale sketches; smaller streams need smaller sketches to
#: produce comparable collision rates.
SKETCH_FACTORIES: Dict[str, Callable[..., Sketch]] = {
    "CMS": lambda seed, scale=1.0: CountMinSketch(
        width=max(4, int(1280 * scale)), depth=4, seed=seed),
    "CS": lambda seed, scale=1.0: CountSketch(
        width=max(4, int(1024 * scale)), depth=5, seed=seed),
    "UnivMon": lambda seed, scale=1.0: UnivMonSketch(
        width=max(4, int(256 * scale)), depth=5, levels=4, seed=seed),
    "NitroSketch": lambda seed, scale=1.0: NitroSketch(
        width=max(4, int(1024 * scale)), depth=5,
        sample_probability=0.5, seed=seed),
}


def extract_keys(trace, mode: str) -> np.ndarray:
    """Flatten a trace into per-record u64 keys for an aggregation mode.

    Modes follow Fig 13: ``dst_ip`` (CAIDA), ``src_ip`` (DC),
    ``five_tuple`` (CA).  For flow traces each record is weighted by its
    packet count when callers pass ``counts``; the packet-level traces
    contribute one key per packet.
    """
    if mode == "dst_ip":
        return trace.dst_ip.astype(np.uint64)
    if mode == "src_ip":
        return trace.src_ip.astype(np.uint64)
    if mode == "five_tuple":
        key = (
            trace.src_ip.astype(np.uint64)
            ^ mix64(trace.dst_ip.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15))
            ^ mix64(trace.src_port.astype(np.uint64) + np.uint64(1))
            ^ mix64(trace.dst_port.astype(np.uint64) + np.uint64(2))
            ^ mix64(trace.protocol.astype(np.uint64) + np.uint64(3))
        )
        return key
    raise ValueError(f"unknown aggregation mode {mode!r}")


def exact_counts(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return (unique keys, exact counts)."""
    return np.unique(np.asarray(keys, dtype=np.uint64), return_counts=True)


def heavy_hitters(keys: np.ndarray, threshold: float = 0.001
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Keys whose exact frequency exceeds ``threshold`` of total volume."""
    if not 0 < threshold < 1:
        raise ValueError("threshold must be a fraction in (0, 1)")
    unique, counts = exact_counts(keys)
    cutoff = threshold * len(keys)
    mask = counts > cutoff
    return unique[mask], counts[mask]


def heavy_hitter_estimation_error(
    sketch: Sketch, keys: np.ndarray, threshold: float = 0.001
) -> float:
    """Mean relative error of the sketch's count estimates over the true
    heavy hitters.  Raises if the trace has no heavy hitters (a caller
    can then mark the baseline 'missing', as Fig 13 does)."""
    hh_keys, hh_counts = heavy_hitters(keys, threshold)
    if len(hh_keys) == 0:
        raise ValueError("no heavy hitters above threshold")
    sketch.update_many(np.asarray(keys, dtype=np.uint64))
    estimates = sketch.estimate_many(hh_keys)
    return float(np.mean(np.abs(estimates - hh_counts) / hh_counts))


def relative_error_between_traces(
    sketch_name: str,
    real_keys: np.ndarray,
    synthetic_keys: np.ndarray,
    threshold: float = 0.001,
    n_runs: int = 10,
    seed: int = 0,
    scale: float = 1.0,
) -> float:
    """Fig 13's statistic: |error_syn - error_real| / error_real,
    averaged over ``n_runs`` independently seeded sketch instances."""
    factory = SKETCH_FACTORIES[sketch_name]
    ratios = []
    for run in range(n_runs):
        err_real = heavy_hitter_estimation_error(
            factory(seed + run, scale), real_keys, threshold
        )
        err_syn = heavy_hitter_estimation_error(
            factory(seed + run, scale), synthetic_keys, threshold
        )
        # Floor the denominator at 1% absolute error: at small
        # scale a sketch can be exact on the real trace, which would
        # make the ratio degenerate.
        denom = max(err_real, 0.01)
        ratios.append(abs(err_syn - err_real) / denom)
    return float(np.mean(ratios))
