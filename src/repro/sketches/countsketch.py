"""Count Sketch (Charikar, Chen & Farach-Colton 2002) — 'CS' in Fig 13."""

from __future__ import annotations

import numpy as np

from .base import Sketch, UniversalHash

__all__ = ["CountSketch"]


class CountSketch(Sketch):
    """Signed counters; estimate = median over rows (unbiased)."""

    def __init__(self, width: int = 1024, depth: int = 5, seed: int = 0):
        self.hash = UniversalHash(width, depth, seed)
        self.table = np.zeros((depth, width), dtype=np.float64)

    def update_many(self, keys: np.ndarray, counts=None) -> None:
        keys = np.asarray(keys, dtype=np.uint64)
        if counts is None:
            counts = np.ones(len(keys), dtype=np.float64)
        buckets = self.hash.bucket(keys)
        for row in range(self.hash.depth):
            signs = self.hash.sign(keys, row)
            np.add.at(self.table[row], buckets[row], signs * counts)

    def estimate_many(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        buckets = self.hash.bucket(keys)
        estimates = np.stack([
            self.hash.sign(keys, row) * self.table[row, buckets[row]]
            for row in range(self.hash.depth)
        ])
        return np.median(estimates, axis=0)

    @property
    def memory_counters(self) -> int:
        return self.table.size
