"""Elastic Sketch (Yang et al., SIGCOMM 2018).

Cited by the paper ([78]) as a telemetry approach that exploits
workload structure ("heavy flows") — exactly the property synthetic
traces must preserve.  The sketch separates traffic into a *heavy
part* (a hash table with vote-based eviction holding elephant flows
exactly) and a *light part* (a small count-min sketch absorbing mice
and evicted residue).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .base import Sketch, mix64
from .countmin import CountMinSketch

__all__ = ["ElasticSketch"]


class _HeavyBucket:
    __slots__ = ("key", "positive", "negative")

    def __init__(self):
        self.key = None
        self.positive = 0.0  # votes for the resident key
        self.negative = 0.0  # votes against (other keys hashing here)


class ElasticSketch(Sketch):
    def __init__(self, heavy_buckets: int = 64, light_width: int = 512,
                 light_depth: int = 3, eviction_threshold: float = 8.0,
                 seed: int = 0):
        if heavy_buckets < 1:
            raise ValueError("need at least one heavy bucket")
        if eviction_threshold <= 0:
            raise ValueError("eviction threshold must be positive")
        self.heavy = [_HeavyBucket() for _ in range(heavy_buckets)]
        self.light = CountMinSketch(width=light_width, depth=light_depth,
                                    seed=seed)
        self.eviction_threshold = eviction_threshold
        self._salt = np.uint64(seed * 0x9E3779B9 + 1)

    def _bucket_of(self, key: int) -> int:
        h = mix64(np.array([np.uint64(key) + self._salt], dtype=np.uint64))[0]
        return int(h % np.uint64(len(self.heavy)))

    def update(self, key: int, count: float = 1.0) -> None:
        bucket = self.heavy[self._bucket_of(key)]
        if bucket.key is None:
            bucket.key = int(key)
            bucket.positive = count
            return
        if bucket.key == int(key):
            bucket.positive += count
            return
        bucket.negative += count
        # Vote-based eviction: when strangers outvote the resident by
        # the threshold ratio, the resident's count spills to the light
        # part and the newcomer takes over.
        if bucket.negative / max(bucket.positive, 1e-12) >= self.eviction_threshold:
            self.light.update(bucket.key, bucket.positive)
            bucket.key = int(key)
            bucket.positive = count
            bucket.negative = 0.0
        else:
            self.light.update(int(key), count)

    def update_many(self, keys: np.ndarray, counts=None) -> None:
        keys = np.asarray(keys, dtype=np.uint64)
        if counts is None:
            counts = np.ones(len(keys))
        for k, c in zip(keys, counts):
            self.update(int(k), float(c))

    def estimate(self, key: int) -> float:
        bucket = self.heavy[self._bucket_of(key)]
        light = self.light.estimate(int(key))
        if bucket.key == int(key):
            return bucket.positive + light
        return light

    def estimate_many(self, keys: np.ndarray) -> np.ndarray:
        return np.array([self.estimate(int(k)) for k in np.asarray(keys)])

    def heavy_flows(self) -> Dict[int, float]:
        """Flows currently resident in the heavy part."""
        return {
            b.key: b.positive for b in self.heavy if b.key is not None
        }

    @property
    def memory_counters(self) -> int:
        # Each heavy bucket holds key + two votes (3 counters).
        return 3 * len(self.heavy) + self.light.memory_counters
