"""Named dataset profiles mirroring the paper's six evaluation traces.

§6.1 of the paper: three flow-header datasets (UGR16, CIDDS, TON) and
three packet-header datasets (CAIDA, DC, CA).  Each profile below tunes
the workload engine to that dataset's published character.  Two extra
*public* profiles (``caida_chicago_2015``, used to train IP2Vec and as
the DP "pretrain-SAME" source, and ``dc_public`` as "pretrain-DIFF")
support Insight 4's public-data pretraining.
"""

from __future__ import annotations

from typing import Dict, List

from .records import PROTO_ICMP, PROTO_TCP, PROTO_UDP
from .synthetic import WorkloadProfile

__all__ = [
    "DATASET_PROFILES",
    "NETFLOW_DATASETS",
    "PCAP_DATASETS",
    "PUBLIC_DATASETS",
    "load_dataset",
    "get_profile",
]


def _ugr16() -> WorkloadProfile:
    """Spanish ISP NetFlow (UGR16): diverse clients, background attacks."""
    return WorkloadProfile(
        name="ugr16",
        kind="netflow",
        src_ip_base="42.219",
        dst_ip_base="143.72",
        n_src_ips=500,
        n_dst_ips=800,
        src_zipf=1.1,
        dst_zipf=0.9,
        service_port_share=0.65,
        service_port_weights={53: 0.35, 80: 0.25, 443: 0.2, 445: 0.08,
                              21: 0.04, 25: 0.05, 22: 0.03},
        protocol_mix={PROTO_TCP: 0.62, PROTO_UDP: 0.33, PROTO_ICMP: 0.05},
        flow_size_logmu=1.1,
        flow_size_logsigma=1.3,
        elephant_fraction=0.03,
        long_lived_fraction=0.18,
        long_lived_duration_scale=5.0,
        attack_mix={"dos": 0.04, "portscan": 0.04, "bruteforce": 0.02},
    )


def _cidds() -> WorkloadProfile:
    """Emulated small-business network (CIDDS): few servers, clear attacks."""
    return WorkloadProfile(
        name="cidds",
        kind="netflow",
        src_ip_base="192.168",
        dst_ip_base="192.168",
        n_src_ips=60,
        n_dst_ips=40,
        src_zipf=0.8,
        dst_zipf=1.4,
        service_port_share=0.8,
        service_port_weights={80: 0.3, 443: 0.25, 25: 0.15, 53: 0.15,
                              22: 0.1, 445: 0.05},
        protocol_mix={PROTO_TCP: 0.78, PROTO_UDP: 0.2, PROTO_ICMP: 0.02},
        flow_size_logmu=1.4,
        flow_size_logsigma=0.9,
        elephant_fraction=0.01,
        long_lived_fraction=0.1,
        attack_mix={"dos": 0.08, "portscan": 0.08, "bruteforce": 0.06},
    )


def _ton() -> WorkloadProfile:
    """TON_IoT telemetry: ~65% normal, rest spread over nine attacks."""
    attack_share = 0.3493
    nine = attack_share / 9.0
    return WorkloadProfile(
        name="ton",
        kind="netflow",
        src_ip_base="192.168",
        dst_ip_base="3.122",
        n_src_ips=120,
        n_dst_ips=200,
        src_zipf=1.0,
        dst_zipf=1.1,
        service_port_share=0.7,
        service_port_weights={53: 0.3, 80: 0.25, 445: 0.15, 443: 0.15,
                              21: 0.1, 123: 0.05},
        protocol_mix={PROTO_TCP: 0.65, PROTO_UDP: 0.3, PROTO_ICMP: 0.05},
        flow_size_logmu=1.0,
        flow_size_logsigma=1.0,
        attack_mix={
            "ddos": nine, "dos": nine, "portscan": nine, "bruteforce": nine,
            "backdoor": nine, "injection": nine, "mitm": nine,
            "ransomware": nine, "xss": nine,
        },
    )


def _caida() -> WorkloadProfile:
    """CAIDA NYC 2018 backbone PCAP: huge address diversity, no labels."""
    return WorkloadProfile(
        name="caida",
        kind="pcap",
        src_ip_base="98",
        dst_ip_base="151",
        n_src_ips=1500,
        n_dst_ips=1500,
        src_zipf=1.05,
        dst_zipf=1.05,
        service_port_share=0.6,
        service_port_weights={443: 0.35, 80: 0.3, 53: 0.2, 22: 0.05,
                              25: 0.05, 445: 0.05},
        protocol_mix={PROTO_TCP: 0.8, PROTO_UDP: 0.17, PROTO_ICMP: 0.03},
        flow_size_logmu=1.6,
        flow_size_logsigma=1.4,
        elephant_fraction=0.02,
        mean_iat_in_flow_ms=8.0,
        trace_duration_ms=60_000.0,
    )


def _dc() -> WorkloadProfile:
    """UNI1 data center PCAP (IMC 2010): rack locality, heavy elephants."""
    return WorkloadProfile(
        name="dc",
        kind="pcap",
        src_ip_base="10.1",
        dst_ip_base="10.1",
        n_src_ips=300,
        n_dst_ips=300,
        src_zipf=1.3,
        dst_zipf=1.3,
        service_port_share=0.75,
        service_port_weights={80: 0.3, 443: 0.2, 3306: 0.2, 53: 0.15,
                              8080: 0.15},
        protocol_mix={PROTO_TCP: 0.92, PROTO_UDP: 0.07, PROTO_ICMP: 0.01},
        # Elephant-heavy but flow-diverse: small evaluation subsets must
        # still contain enough distinct flows to train on.
        flow_size_logmu=1.6,
        flow_size_logsigma=1.3,
        elephant_fraction=0.04,
        elephant_scale=150.0,
        mean_iat_in_flow_ms=2.0,
        trace_duration_ms=60_000.0,
    )


def _ca() -> WorkloadProfile:
    """MACCDC cyber-defense competition PCAP: scan/attack heavy."""
    return WorkloadProfile(
        name="ca",
        kind="pcap",
        src_ip_base="192.168",
        dst_ip_base="192.168",
        n_src_ips=100,
        n_dst_ips=150,
        src_zipf=1.2,
        dst_zipf=0.9,
        service_port_share=0.55,
        service_port_weights={80: 0.25, 443: 0.2, 22: 0.2, 445: 0.2,
                              21: 0.1, 23: 0.05},
        protocol_mix={PROTO_TCP: 0.85, PROTO_UDP: 0.12, PROTO_ICMP: 0.03},
        flow_size_logmu=1.2,
        flow_size_logsigma=1.2,
        mean_iat_in_flow_ms=15.0,
        trace_duration_ms=120_000.0,
        attack_mix={"portscan": 0.15, "bruteforce": 0.08, "dos": 0.05},
    )


def _caida_chicago_2015() -> WorkloadProfile:
    """Public CAIDA Chicago 2015 trace: same domain as `caida`, used to
    train the IP2Vec embedding and as the DP pretrain-SAME source."""
    profile = _caida()
    profile.name = "caida_chicago_2015"
    profile.src_ip_base = "71"
    profile.dst_ip_base = "104"
    # Wide port/protocol coverage so the embedding dictionary contains
    # (almost) every word the private data uses (Insight 2).
    profile.service_port_share = 0.5
    profile.service_port_weights = {
        p: 1.0 for p in (20, 21, 22, 23, 25, 53, 80, 110, 123, 143, 161,
                         443, 445, 993, 3306, 3389, 5353, 8080)
    }
    return profile


def _dc_public() -> WorkloadProfile:
    """Public data-center trace from a *different* domain than CAIDA —
    the DP pretrain-DIFF source in Fig 5."""
    profile = _dc()
    profile.name = "dc_public"
    profile.src_ip_base = "10.9"
    profile.dst_ip_base = "10.9"
    return profile


DATASET_PROFILES: Dict[str, WorkloadProfile] = {}
for _factory in (_ugr16, _cidds, _ton, _caida, _dc, _ca,
                 _caida_chicago_2015, _dc_public):
    _p = _factory()
    DATASET_PROFILES[_p.name] = _p

NETFLOW_DATASETS: List[str] = ["ugr16", "cidds", "ton"]
PCAP_DATASETS: List[str] = ["caida", "dc", "ca"]
PUBLIC_DATASETS: List[str] = ["caida_chicago_2015", "dc_public"]


def get_profile(name: str) -> WorkloadProfile:
    """Look up a dataset profile by name."""
    try:
        return DATASET_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_PROFILES)}"
        ) from None


def load_dataset(name: str, n_records: int = 2000, seed: int = 0):
    """Generate the named dataset (FlowTrace or PacketTrace).

    The paper uses 1M-record subsets; at numpy-GAN scale we default to
    2k records, which preserves every distributional phenomenon the
    evaluation measures.
    """
    return get_profile(name).generate(n_records, seed=seed)
