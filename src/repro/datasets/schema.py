"""Field schemas shared by the metrics, encoders, and synthesizers.

The paper's fidelity evaluation (§6.2, Finding 1) computes JSD over
*categorical* fields (SA/DA, SP/DP, PR) and EMD over *continuous*
fields (TS, TD, PKT, BYT for NetFlow; PS, PAT, FS for PCAP).  The
schema objects here name those fields once so every consumer agrees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from .records import FlowTrace, PacketTrace

__all__ = [
    "FieldKind",
    "FieldSpec",
    "NETFLOW_FIELDS",
    "PCAP_FIELDS",
    "fields_for",
    "bin_ports",
    "SERVICE_PORTS",
    "PORT_PROTOCOL_MAP",
]


class FieldKind:
    CATEGORICAL = "categorical"
    #: popularity-rank distribution (the paper's SA/DA treatment)
    RANKED = "ranked"
    CONTINUOUS = "continuous"


@dataclass(frozen=True)
class FieldSpec:
    """One evaluated header field.

    ``extract`` pulls the field's values from a trace; for derived
    fields (e.g. FS = packets per five-tuple flow) it computes them.
    """

    name: str
    kind: str
    extract: Callable[[object], np.ndarray]
    description: str = ""

    def values(self, trace) -> np.ndarray:
        return np.asarray(self.extract(trace))


def _flow_field(attr: str) -> Callable[[FlowTrace], np.ndarray]:
    return lambda trace: getattr(trace, attr)


def bin_ports(ports: np.ndarray, tail_bin: int = 512) -> np.ndarray:
    """Histogram binning for port-number distributions.

    Well-known ports (< 1024) keep their exact value — the Fig 3
    service-port structure — while the ephemeral range is grouped into
    ``tail_bin``-wide buckets.  The paper computes exact histograms
    over 0..65535 from 1M-record traces; at the few-thousand-record
    scale this repo trains at, exact ephemeral values are almost all
    unique and exact-value JSD saturates at 1 even between two real
    samples, so binning is required for the metric to discriminate.
    """
    ports = np.asarray(ports, dtype=np.int64)
    return np.where(ports < 1024, ports, 1024 + (ports - 1024) // tail_bin)


def _port_field(attr: str) -> Callable[[FlowTrace], np.ndarray]:
    return lambda trace: bin_ports(getattr(trace, attr))


#: NetFlow fields evaluated in Fig. 10a/b (and 16): five categorical
#: (JSD) + four continuous (EMD).
NETFLOW_FIELDS: List[FieldSpec] = [
    FieldSpec("SA", FieldKind.RANKED, _flow_field("src_ip"),
              "source IP address popularity ranks"),
    FieldSpec("DA", FieldKind.RANKED, _flow_field("dst_ip"),
              "destination IP address popularity ranks"),
    FieldSpec("SP", FieldKind.CATEGORICAL, _port_field("src_port"),
              "source port number (binned histogram)"),
    FieldSpec("DP", FieldKind.CATEGORICAL, _port_field("dst_port"),
              "destination port number (binned histogram)"),
    FieldSpec("PR", FieldKind.CATEGORICAL, _flow_field("protocol"),
              "IP protocol"),
    FieldSpec("TS", FieldKind.CONTINUOUS, _flow_field("start_time"),
              "flow start time (ms)"),
    FieldSpec("TD", FieldKind.CONTINUOUS, _flow_field("duration"),
              "flow duration (ms)"),
    FieldSpec("PKT", FieldKind.CONTINUOUS, _flow_field("packets"),
              "packets per flow"),
    FieldSpec("BYT", FieldKind.CONTINUOUS, _flow_field("bytes"),
              "bytes per flow"),
]

#: PCAP fields evaluated in Fig. 10c/d (and 17): five categorical +
#: three continuous (PS, PAT, FS).
PCAP_FIELDS: List[FieldSpec] = [
    FieldSpec("SA", FieldKind.RANKED, _flow_field("src_ip"),
              "source IP address popularity ranks"),
    FieldSpec("DA", FieldKind.RANKED, _flow_field("dst_ip"),
              "destination IP address popularity ranks"),
    FieldSpec("SP", FieldKind.CATEGORICAL, _port_field("src_port"),
              "source port number (binned histogram)"),
    FieldSpec("DP", FieldKind.CATEGORICAL, _port_field("dst_port"),
              "destination port number (binned histogram)"),
    FieldSpec("PR", FieldKind.CATEGORICAL, _flow_field("protocol"),
              "IP protocol"),
    FieldSpec("PS", FieldKind.CONTINUOUS, _flow_field("packet_size"),
              "packet size (bytes)"),
    FieldSpec("PAT", FieldKind.CONTINUOUS, _flow_field("timestamp"),
              "packet arrival time (ms)"),
    FieldSpec("FS", FieldKind.CONTINUOUS, lambda t: t.flow_sizes(),
              "flow size (packets per five-tuple)"),
]


def fields_for(trace) -> List[FieldSpec]:
    """Return the evaluated field list for a trace's type."""
    if isinstance(trace, FlowTrace):
        return NETFLOW_FIELDS
    if isinstance(trace, PacketTrace):
        return PCAP_FIELDS
    raise TypeError(f"unsupported trace type: {type(trace).__name__}")


#: Well-known service ports and their expected transport protocol,
#: used by the workload generators and by consistency Test 3
#: (Appendix B): if the port indicates a specific protocol the
#: protocol field must comply.
PORT_PROTOCOL_MAP: Dict[int, int] = {
    20: 6,    # FTP data
    21: 6,    # FTP control
    22: 6,    # SSH
    23: 6,    # telnet
    25: 6,    # SMTP
    53: 17,   # DNS
    80: 6,    # HTTP
    110: 6,   # POP3
    123: 17,  # NTP
    143: 6,   # IMAP
    161: 17,  # SNMP
    443: 6,   # HTTPS
    445: 6,   # SMB
    993: 6,   # IMAPS
    3306: 6,  # MySQL
    3389: 6,  # RDP
    5353: 17, # mDNS
    8080: 6,  # HTTP alternate
}

SERVICE_PORTS: List[int] = sorted(PORT_PROTOCOL_MAP)
