"""Synthetic workload engine standing in for the paper's public traces.

The paper evaluates on six public datasets (UGR16, CIDDS, TON; CAIDA,
DC, CA).  Those traces are not redistributable here, so this module
implements a structural workload generator whose outputs exercise the
same phenomena the evaluation measures:

* Zipf-distributed IP and port popularity (heavy hitters for Fig 13),
* a service-port head (53/80/443/445/21...) over an ephemeral tail
  (Fig 3),
* heavy-tailed flow sizes and volumes — lognormal body with a Pareto
  elephant tail spanning mice to elephants (Fig 2),
* long-lived flows that are emitted as multiple NetFlow records due to
  collector active-timeout behaviour, and flows spanning measurement
  epochs (Fig 1a),
* multi-packet flows with realistic per-packet sizes/inter-arrivals
  for PCAP data (Fig 1b),
* labelled attack traffic with per-attack structure (DoS, port scan,
  brute force, and the TON IoT attack mix) for the prediction task
  (Fig 12, Table 3).

Every sampler takes an explicit ``numpy.random.Generator`` so dataset
generation is reproducible from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .records import (
    ATTACK_TYPES,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    FlowTrace,
    PacketTrace,
    ip_to_int,
)
from .schema import PORT_PROTOCOL_MAP

__all__ = [
    "WorkloadProfile",
    "zipf_weights",
    "sample_zipf_pool",
    "generate_flow_trace",
    "generate_packet_trace",
]

_ATTACK_CODES = {name: code for code, name in ATTACK_TYPES.items()}


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalised Zipf(pmf ∝ rank^-exponent) weights over ``n`` items."""
    if n <= 0:
        raise ValueError("pool size must be positive")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def sample_zipf_pool(
    rng: np.random.Generator,
    pool: np.ndarray,
    exponent: float,
    size: int,
) -> np.ndarray:
    """Sample ``size`` items from ``pool`` with Zipf popularity."""
    weights = zipf_weights(len(pool), exponent)
    return rng.choice(pool, size=size, p=weights)


def _make_ip_pool(rng: np.random.Generator, base: str, count: int) -> np.ndarray:
    """Build a pool of ``count`` distinct IPs under ``base`` (e.g. '10.7')."""
    parts = base.split(".")
    prefix = 0
    for p in parts:
        prefix = (prefix << 8) | int(p)
    host_bits = 32 - 8 * len(parts)
    space = 1 << host_bits
    if count > space:
        raise ValueError(f"cannot draw {count} IPs from a /{8 * len(parts)}")
    hosts = rng.choice(space, size=count, replace=False)
    return (np.uint32(prefix) << np.uint32(host_bits)) | hosts.astype(np.uint32)


@dataclass
class WorkloadProfile:
    """Knobs describing one dataset's structural character."""

    name: str
    kind: str  # "netflow" or "pcap"
    # address structure
    src_ip_base: str = "10.0"
    dst_ip_base: str = "172.16"
    n_src_ips: int = 400
    n_dst_ips: int = 600
    src_zipf: float = 1.1
    dst_zipf: float = 1.0
    # ports and protocols
    service_port_share: float = 0.7
    service_port_weights: Dict[int, float] = field(
        default_factory=lambda: {53: 0.3, 80: 0.25, 443: 0.2, 445: 0.1,
                                 21: 0.05, 22: 0.05, 25: 0.05}
    )
    protocol_mix: Dict[int, float] = field(
        default_factory=lambda: {PROTO_TCP: 0.7, PROTO_UDP: 0.25, PROTO_ICMP: 0.05}
    )
    # flow size / volume (lognormal body, Pareto elephant tail)
    flow_size_logmu: float = 1.2
    flow_size_logsigma: float = 1.1
    elephant_fraction: float = 0.02
    elephant_pareto_alpha: float = 0.9
    elephant_scale: float = 200.0
    # timing
    trace_duration_ms: float = 600_000.0  # ten minutes
    diurnal_amplitude: float = 0.3
    mean_iat_in_flow_ms: float = 40.0
    # NetFlow collector behaviour (drives Fig 1a)
    active_timeout_ms: float = 30_000.0
    long_lived_fraction: float = 0.12
    long_lived_duration_scale: float = 4.0
    # attacks
    attack_mix: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in ("netflow", "pcap"):
            raise ValueError(f"unknown trace kind {self.kind!r}")
        total_attack = sum(self.attack_mix.values())
        if total_attack > 0.9:
            raise ValueError("attack mix cannot exceed 90% of the trace")
        for attack in self.attack_mix:
            if attack not in _ATTACK_CODES:
                raise ValueError(f"unknown attack type {attack!r}")

    # ------------------------------------------------------------------
    def generate(self, n_records: int, seed: int = 0):
        """Generate approximately ``n_records`` records of this profile."""
        rng = np.random.default_rng(seed)
        if self.kind == "netflow":
            return generate_flow_trace(self, n_records, rng)
        return generate_packet_trace(self, n_records, rng)


# ----------------------------------------------------------------------
# base flow synthesis
# ----------------------------------------------------------------------
def _sample_arrival_times(
    rng: np.random.Generator, profile: WorkloadProfile, size: int
) -> np.ndarray:
    """Arrival times with a sinusoidal (diurnal-like) intensity."""
    duration = profile.trace_duration_ms
    # Rejection sampling against intensity 1 + a*sin(2*pi*t/duration).
    amplitude = min(max(profile.diurnal_amplitude, 0.0), 0.99)
    times = []
    needed = size
    while needed > 0:
        candidates = rng.uniform(0.0, duration, size=2 * needed)
        intensity = 1.0 + amplitude * np.sin(2 * np.pi * candidates / duration)
        keep = rng.uniform(0.0, 1.0 + amplitude, size=len(candidates)) < intensity
        accepted = candidates[keep][:needed]
        times.append(accepted)
        needed -= len(accepted)
    return np.sort(np.concatenate(times))[:size]


def _sample_flow_sizes(
    rng: np.random.Generator, profile: WorkloadProfile, size: int
) -> np.ndarray:
    """Packets per flow: lognormal body with a Pareto elephant tail."""
    body = rng.lognormal(profile.flow_size_logmu, profile.flow_size_logsigma, size)
    packets = np.maximum(1, np.round(body)).astype(np.int64)
    elephants = rng.uniform(size=size) < profile.elephant_fraction
    if elephants.any():
        tail = (rng.pareto(profile.elephant_pareto_alpha, elephants.sum()) + 1.0)
        packets[elephants] = np.maximum(
            packets[elephants],
            np.round(tail * profile.elephant_scale).astype(np.int64),
        )
    return np.minimum(packets, 2_000_000)


def _packet_size_params(protocol: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-packet size floor/ceiling by protocol (Appendix B Test 2/4)."""
    floor = np.where(protocol == PROTO_TCP, 40, np.where(protocol == PROTO_UDP, 28, 28))
    ceiling = np.full(len(protocol), 1500)
    return floor, ceiling


def _sample_ports_and_protocols(
    rng: np.random.Generator, profile: WorkloadProfile, size: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample (src_port, dst_port, protocol) with port/protocol coupling."""
    service_ports = np.array(sorted(profile.service_port_weights), dtype=np.int64)
    weights = np.array(
        [profile.service_port_weights[p] for p in service_ports], dtype=np.float64
    )
    weights = weights / weights.sum()

    protocols = rng.choice(
        np.array(sorted(profile.protocol_mix), dtype=np.int64),
        size=size,
        p=np.array(
            [profile.protocol_mix[k] for k in sorted(profile.protocol_mix)],
            dtype=np.float64,
        )
        / sum(profile.protocol_mix.values()),
    )

    dst_port = np.where(
        rng.uniform(size=size) < profile.service_port_share,
        rng.choice(service_ports, size=size, p=weights),
        rng.integers(1024, 65536, size=size),
    )
    src_port = rng.integers(1024, 65536, size=size)

    # Enforce port→protocol compliance for well-known service ports, and
    # strip ports from ICMP traffic (no L4 header).
    for port, proto in PORT_PROTOCOL_MAP.items():
        mask = dst_port == port
        protocols[mask] = proto
    icmp = protocols == PROTO_ICMP
    src_port[icmp] = 0
    dst_port[icmp] = 0
    return src_port, dst_port.astype(np.int64), protocols


@dataclass
class _BaseFlows:
    """Intermediate representation before NetFlow/PCAP materialisation."""

    src_ip: np.ndarray
    dst_ip: np.ndarray
    src_port: np.ndarray
    dst_port: np.ndarray
    protocol: np.ndarray
    start_time: np.ndarray
    duration: np.ndarray
    packets: np.ndarray
    bytes: np.ndarray
    label: np.ndarray
    attack_type: np.ndarray

    def __len__(self):
        return len(self.src_ip)


def _synthesize_base_flows(
    rng: np.random.Generator, profile: WorkloadProfile, n_flows: int
) -> _BaseFlows:
    src_pool = _make_ip_pool(rng, profile.src_ip_base, profile.n_src_ips)
    dst_pool = _make_ip_pool(rng, profile.dst_ip_base, profile.n_dst_ips)

    n_attack = int(sum(profile.attack_mix.values()) * n_flows)
    n_benign = n_flows - n_attack

    src_ip = sample_zipf_pool(rng, src_pool, profile.src_zipf, n_benign)
    dst_ip = sample_zipf_pool(rng, dst_pool, profile.dst_zipf, n_benign)
    src_port, dst_port, protocol = _sample_ports_and_protocols(rng, profile, n_benign)
    packets = _sample_flow_sizes(rng, profile, n_benign)

    floor, ceiling = _packet_size_params(protocol)
    mean_size = np.clip(rng.normal(700, 350, size=n_benign), floor + 10, ceiling)
    bytes_ = (packets * mean_size).astype(np.int64)
    bytes_ = np.maximum(bytes_, packets * floor)
    bytes_ = np.minimum(bytes_, packets * 65535)

    start = _sample_arrival_times(rng, profile, n_benign)
    base_duration = packets * profile.mean_iat_in_flow_ms
    duration = base_duration * rng.lognormal(0.0, 0.5, size=n_benign)
    long_lived = rng.uniform(size=n_benign) < profile.long_lived_fraction
    duration[long_lived] *= profile.long_lived_duration_scale
    duration = np.minimum(duration, profile.trace_duration_ms * 1.5)

    label = np.zeros(n_benign, dtype=np.int64)
    attack_type = np.zeros(n_benign, dtype=np.int64)

    flows = _BaseFlows(
        src_ip, dst_ip, src_port, dst_port, protocol,
        start, duration, packets, bytes_, label, attack_type,
    )
    if n_attack:
        attack_flows = _synthesize_attacks(rng, profile, src_pool, dst_pool, n_attack)
        flows = _concat_base(flows, attack_flows)
    order = np.argsort(flows.start_time, kind="stable")
    return _BaseFlows(**{
        k: getattr(flows, k)[order] for k in vars(flows)
    })


def _concat_base(a: _BaseFlows, b: _BaseFlows) -> _BaseFlows:
    return _BaseFlows(**{
        k: np.concatenate([getattr(a, k), getattr(b, k)]) for k in vars(a)
    })


def _synthesize_attacks(
    rng: np.random.Generator,
    profile: WorkloadProfile,
    src_pool: np.ndarray,
    dst_pool: np.ndarray,
    n_attack: int,
) -> _BaseFlows:
    """Generate attack flows with per-attack structural signatures."""
    mix = profile.attack_mix
    total = sum(mix.values())
    columns = {k: [] for k in (
        "src_ip", "dst_ip", "src_port", "dst_port", "protocol",
        "start_time", "duration", "packets", "bytes", "label", "attack_type",
    )}

    for attack, share in mix.items():
        count = max(1, int(round(n_attack * share / total)))
        code = _ATTACK_CODES[attack]
        start = _sample_arrival_times(rng, profile, count)
        if attack in ("dos", "ddos"):
            # Many high-rate flows converging on a single victim/port.
            victim = rng.choice(dst_pool)
            n_sources = max(1, count // 20) if attack == "dos" else max(5, count // 4)
            sources = rng.choice(src_pool, size=n_sources, replace=False
                                 if n_sources <= len(src_pool) else True)
            src = rng.choice(sources, size=count)
            dst = np.full(count, victim, dtype=np.uint32)
            dport = np.full(count, 80, dtype=np.int64)
            proto = np.full(count, PROTO_TCP, dtype=np.int64)
            pkts = rng.integers(100, 3000, size=count)
            byt = pkts * rng.integers(40, 120, size=count)
            dur = pkts * rng.uniform(0.5, 2.0, size=count)
        elif attack in ("portscan", "scanning"):
            # One scanner sweeping many ports with 1-2 packet flows.
            scanner = rng.choice(src_pool)
            src = np.full(count, scanner, dtype=np.uint32)
            dst = rng.choice(dst_pool, size=count)
            dport = rng.permutation(np.arange(1, 65536))[:count].astype(np.int64)
            proto = np.full(count, PROTO_TCP, dtype=np.int64)
            pkts = rng.integers(1, 3, size=count)
            byt = pkts * 40
            dur = rng.uniform(0.1, 5.0, size=count)
        elif attack == "bruteforce":
            # Repeated short connections to an auth service (SSH).
            attacker = rng.choice(src_pool)
            victim = rng.choice(dst_pool)
            src = np.full(count, attacker, dtype=np.uint32)
            dst = np.full(count, victim, dtype=np.uint32)
            dport = np.full(count, 22, dtype=np.int64)
            proto = np.full(count, PROTO_TCP, dtype=np.int64)
            pkts = rng.integers(8, 25, size=count)
            byt = pkts * rng.integers(60, 200, size=count)
            dur = rng.uniform(500, 4000, size=count)
        else:
            # IoT attack grab bag (backdoor/injection/mitm/ransomware/xss):
            # anomalous ports and volumes, single source pair per type.
            src = rng.choice(src_pool, size=count)
            dst = rng.choice(dst_pool, size=count)
            dport = rng.choice(
                np.array([4444, 8443, 1337, 6667, 31337], dtype=np.int64), size=count
            )
            proto = rng.choice(
                np.array([PROTO_TCP, PROTO_UDP], dtype=np.int64), size=count
            )
            pkts = rng.integers(3, 400, size=count)
            byt = pkts * rng.integers(50, 1400, size=count)
            dur = pkts * rng.uniform(5.0, 60.0, size=count)

        sport = rng.integers(1024, 65536, size=count)
        columns["src_ip"].append(src)
        columns["dst_ip"].append(dst)
        columns["src_port"].append(sport.astype(np.int64))
        columns["dst_port"].append(dport)
        columns["protocol"].append(proto)
        columns["start_time"].append(start)
        columns["duration"].append(dur)
        columns["packets"].append(pkts.astype(np.int64))
        columns["bytes"].append(byt.astype(np.int64))
        columns["label"].append(np.ones(count, dtype=np.int64))
        columns["attack_type"].append(np.full(count, code, dtype=np.int64))

    return _BaseFlows(**{k: np.concatenate(v) for k, v in columns.items()})


# ----------------------------------------------------------------------
# NetFlow materialisation
# ----------------------------------------------------------------------
def generate_flow_trace(
    profile: WorkloadProfile, n_records: int, rng: np.random.Generator
) -> FlowTrace:
    """Materialise a NetFlow trace of ~``n_records`` records.

    Long-lived flows are chopped at the collector's active timeout, so
    one five-tuple can emit several records — the behaviour Fig 1a of
    the paper shows baselines failing to learn.
    """
    # Estimate how many base flows produce n_records after timeout splits.
    expansion = 1.0 + profile.long_lived_fraction * max(
        profile.long_lived_duration_scale / 2.0, 1.0
    )
    n_flows = max(1, int(n_records / expansion))
    flows = _synthesize_base_flows(rng, profile, n_flows)

    columns = {k: [] for k in (
        "src_ip", "dst_ip", "src_port", "dst_port", "protocol",
        "start_time", "duration", "packets", "bytes", "label", "attack_type",
    )}
    timeout = profile.active_timeout_ms
    n_splits = np.maximum(1, np.ceil(flows.duration / timeout)).astype(np.int64)
    n_splits = np.minimum(n_splits, 32)

    for i in range(len(flows)):
        k = int(n_splits[i])
        pk_total, byt_total = int(flows.packets[i]), int(flows.bytes[i])
        if k == 1:
            shares = np.array([1.0])
        else:
            shares = rng.dirichlet(np.full(k, 3.0))
        pk = np.maximum(1, np.round(shares * pk_total)).astype(np.int64)
        byt = np.maximum(pk * 28, np.round(shares * byt_total)).astype(np.int64)
        seg_duration = flows.duration[i] / k
        starts = flows.start_time[i] + seg_duration * np.arange(k)
        for name, value in (
            ("src_ip", np.full(k, flows.src_ip[i], dtype=np.uint32)),
            ("dst_ip", np.full(k, flows.dst_ip[i], dtype=np.uint32)),
            ("src_port", np.full(k, flows.src_port[i])),
            ("dst_port", np.full(k, flows.dst_port[i])),
            ("protocol", np.full(k, flows.protocol[i])),
            ("start_time", starts),
            ("duration", np.full(k, seg_duration)),
            ("packets", pk),
            ("bytes", byt),
            ("label", np.full(k, flows.label[i])),
            ("attack_type", np.full(k, flows.attack_type[i])),
        ):
            columns[name].append(value)

    trace = FlowTrace(**{k: np.concatenate(v) for k, v in columns.items()})
    trace = trace.sort_by_time()
    if len(trace) > n_records:
        trace = trace.subset(slice(0, n_records))
    return trace


# ----------------------------------------------------------------------
# PCAP materialisation
# ----------------------------------------------------------------------
def generate_packet_trace(
    profile: WorkloadProfile, n_records: int, rng: np.random.Generator
) -> PacketTrace:
    """Materialise a PCAP trace of ~``n_records`` packets.

    Each base flow expands into its individual packets with exponential
    inter-arrivals and protocol-legal sizes, giving the multi-packet
    flows whose size CDF Fig 1b evaluates.
    """
    mean_flow_size = float(
        np.exp(profile.flow_size_logmu + profile.flow_size_logsigma**2 / 2.0)
    )
    n_flows = max(1, int(n_records / max(mean_flow_size, 1.0)))
    flows = _synthesize_base_flows(rng, profile, n_flows)

    counts = np.minimum(flows.packets, 5_000).astype(np.int64)
    total = int(counts.sum())
    timestamp = np.empty(total)
    size = np.empty(total, dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(counts)])

    floor, _ = _packet_size_params(flows.protocol)
    for i in range(len(flows)):
        lo, hi = offsets[i], offsets[i + 1]
        k = hi - lo
        if k <= 0:
            continue
        gaps = rng.exponential(
            max(flows.duration[i] / max(k, 1), 1e-3), size=k
        )
        times = flows.start_time[i] + np.cumsum(gaps) - gaps[0]
        timestamp[lo:hi] = times
        # Bimodal sizes: small control packets + near-MTU data packets.
        data_packet = rng.uniform(size=k) < 0.6
        sizes = np.where(
            data_packet,
            rng.integers(900, 1501, size=k),
            rng.integers(floor[i], 120, size=k),
        )
        sizes = np.maximum(sizes, floor[i])
        size[lo:hi] = sizes

    repeat = np.repeat(np.arange(len(flows)), counts)
    trace = PacketTrace(
        timestamp=timestamp,
        src_ip=flows.src_ip[repeat],
        dst_ip=flows.dst_ip[repeat],
        src_port=flows.src_port[repeat],
        dst_port=flows.dst_port[repeat],
        protocol=flows.protocol[repeat],
        packet_size=size,
        ttl=rng.choice(np.array([32, 64, 128, 255]), size=total,
                       p=[0.05, 0.6, 0.3, 0.05]),
        ip_id=rng.integers(0, 65536, size=total),
    )
    if len(trace) > n_records:
        # Trim at *flow* granularity: a time-prefix cut would keep only
        # the earliest flows and collapse the trace's flow diversity.
        order = rng.permutation(len(flows))
        budget = n_records
        keep_flows = np.zeros(len(flows), dtype=bool)
        for f in order:
            c = int(counts[f])
            if c <= budget:
                keep_flows[f] = True
                budget -= c
            if budget <= 0:
                break
        mask = keep_flows[repeat]
        trace = trace.subset(mask)
    return trace.sort_by_time()
