"""Trace anonymization — the 'Anonymized' row of the paper's Table 1.

§2.2 contrasts raw, anonymized, and synthetic sharing.  This module
implements the two standard anonymization families so the comparison
can be run empirically:

* **prefix-preserving IP anonymization** (Crypto-PAn-style): a
  deterministic bijection on IPv4 addresses such that two addresses
  sharing a k-bit prefix map to addresses sharing a k-bit prefix —
  subnet structure survives, identities do not;
* **truncation anonymization**: zero the low host bits ("obscuring
  and/or redacting more fields ... hurts the resulting data fidelity"
  — the knob is the number of bits removed).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["PrefixPreservingAnonymizer", "truncate_ips", "anonymize_trace"]


class PrefixPreservingAnonymizer:
    """Deterministic prefix-preserving IPv4 anonymization.

    For each bit position i, the output bit is the input bit XOR a
    pseudorandom function of the input's i-bit prefix — the classic
    Crypto-PAn construction with the AES PRF replaced by a keyed
    BLAKE2 hash (no external crypto dependency).
    """

    def __init__(self, key: bytes = b"repro-anon-key"):
        if not key:
            raise ValueError("key must be non-empty")
        self.key = key
        self._cache: Dict[int, np.ndarray] = {}

    def _prf_bit(self, prefix: int, length: int) -> int:
        digest = hashlib.blake2b(
            length.to_bytes(1, "big") + prefix.to_bytes(4, "big"),
            key=self.key, digest_size=1,
        ).digest()
        return digest[0] & 1

    def anonymize_int(self, address: int) -> int:
        """Anonymize one 32-bit address."""
        address = int(address)
        if not 0 <= address <= 0xFFFFFFFF:
            raise ValueError("address out of IPv4 range")
        result = 0
        for i in range(32):
            shift = 31 - i
            prefix = address >> (shift + 1) if i > 0 else 0
            input_bit = (address >> shift) & 1
            output_bit = input_bit ^ self._prf_bit(prefix, i)
            result = (result << 1) | output_bit
        return result

    def anonymize(self, addresses: np.ndarray) -> np.ndarray:
        """Vector version with per-address memoisation."""
        out = np.empty(len(addresses), dtype=np.uint32)
        for i, a in enumerate(addresses):
            a = int(a)
            cached = self._cache.get(a)
            if cached is None:
                cached = self.anonymize_int(a)
                self._cache[a] = cached
            out[i] = cached
        return out


def truncate_ips(addresses: np.ndarray, keep_bits: int = 24) -> np.ndarray:
    """Zero the low (32 - keep_bits) host bits of each address."""
    if not 0 <= keep_bits <= 32:
        raise ValueError("keep_bits must be in [0, 32]")
    mask = np.uint32((0xFFFFFFFF << (32 - keep_bits)) & 0xFFFFFFFF
                     if keep_bits else 0)
    return np.asarray(addresses, dtype=np.uint32) & mask


def anonymize_trace(trace, method: str = "prefix",
                    keep_bits: int = 24, key: bytes = b"repro-anon-key"):
    """Anonymize a trace's IPs; other fields are untouched.

    ``method='prefix'`` applies prefix-preserving anonymization;
    ``method='truncate'`` zeroes host bits.
    """
    out = trace.subset(slice(None))
    if method == "prefix":
        anonymizer = PrefixPreservingAnonymizer(key=key)
        out.src_ip = anonymizer.anonymize(trace.src_ip)
        out.dst_ip = anonymizer.anonymize(trace.dst_ip)
    elif method == "truncate":
        out.src_ip = truncate_ips(trace.src_ip, keep_bits)
        out.dst_ip = truncate_ips(trace.dst_ip, keep_bits)
    else:
        raise ValueError(f"unknown anonymization method {method!r}")
    return out
