"""Serialisation of traces: CSV (NetFlow-style export) and a compact
binary packet format (PCAP-like) with round-trip guarantees.

The binary format is a simplified pcap: an 8-byte magic + version
header followed by fixed-width little-endian records.  It exists so the
examples can hand a generated trace to external tooling and so the
round-trip is testable; it is not byte-compatible with libpcap.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

import numpy as np

from .records import FlowTrace, PacketTrace, int_to_ip, ip_to_int

__all__ = [
    "write_flow_csv",
    "read_flow_csv",
    "write_packet_csv",
    "read_packet_csv",
    "write_packet_binary",
    "read_packet_binary",
]

_FLOW_HEADER = (
    "src_ip,dst_ip,src_port,dst_port,protocol,"
    "start_time_ms,duration_ms,packets,bytes,label,attack_type"
)
_PACKET_HEADER = (
    "timestamp_ms,src_ip,dst_ip,src_port,dst_port,protocol,"
    "packet_size,ttl,ip_id,checksum"
)

_PCAPISH_MAGIC = b"RPCP"
_PCAPISH_VERSION = 1
# timestamp(f8) src(u4) dst(u4) sport(u2) dport(u2) proto(u1) size(u2)
# ttl(u1) ip_id(u2) checksum(u2)
_PACKET_STRUCT = struct.Struct("<dIIHHBHBHH")


def write_flow_csv(trace: FlowTrace, path: Union[str, Path]) -> None:
    """Write a flow trace as CSV with dotted-quad IPs."""
    path = Path(path)
    with path.open("w") as handle:
        handle.write(_FLOW_HEADER + "\n")
        for i in range(len(trace)):
            handle.write(
                f"{int_to_ip(trace.src_ip[i])},{int_to_ip(trace.dst_ip[i])},"
                f"{trace.src_port[i]},{trace.dst_port[i]},{trace.protocol[i]},"
                f"{trace.start_time[i]:.3f},{trace.duration[i]:.3f},"
                f"{trace.packets[i]},{trace.bytes[i]},"
                f"{trace.label[i]},{trace.attack_type[i]}\n"
            )


def read_flow_csv(path: Union[str, Path]) -> FlowTrace:
    """Read a flow trace written by :func:`write_flow_csv`."""
    path = Path(path)
    columns = {k: [] for k in (
        "src_ip", "dst_ip", "src_port", "dst_port", "protocol",
        "start_time", "duration", "packets", "bytes", "label", "attack_type",
    )}
    with path.open() as handle:
        header = handle.readline().strip()
        if header != _FLOW_HEADER:
            raise ValueError(f"unexpected flow CSV header in {path}")
        for line in handle:
            parts = line.strip().split(",")
            if len(parts) != 11:
                raise ValueError(f"malformed flow CSV row: {line!r}")
            columns["src_ip"].append(ip_to_int(parts[0]))
            columns["dst_ip"].append(ip_to_int(parts[1]))
            columns["src_port"].append(int(parts[2]))
            columns["dst_port"].append(int(parts[3]))
            columns["protocol"].append(int(parts[4]))
            columns["start_time"].append(float(parts[5]))
            columns["duration"].append(float(parts[6]))
            columns["packets"].append(int(parts[7]))
            columns["bytes"].append(int(parts[8]))
            columns["label"].append(int(parts[9]))
            columns["attack_type"].append(int(parts[10]))
    return FlowTrace(**{k: np.array(v) for k, v in columns.items()})


def write_packet_csv(trace: PacketTrace, path: Union[str, Path]) -> None:
    """Write a packet trace as CSV with dotted-quad IPs."""
    path = Path(path)
    with path.open("w") as handle:
        handle.write(_PACKET_HEADER + "\n")
        for i in range(len(trace)):
            handle.write(
                f"{trace.timestamp[i]:.6f},"
                f"{int_to_ip(trace.src_ip[i])},{int_to_ip(trace.dst_ip[i])},"
                f"{trace.src_port[i]},{trace.dst_port[i]},{trace.protocol[i]},"
                f"{trace.packet_size[i]},{trace.ttl[i]},{trace.ip_id[i]},"
                f"{trace.checksum[i]}\n"
            )


def read_packet_csv(path: Union[str, Path]) -> PacketTrace:
    """Read a packet trace written by :func:`write_packet_csv`."""
    path = Path(path)
    columns = {k: [] for k in (
        "timestamp", "src_ip", "dst_ip", "src_port", "dst_port",
        "protocol", "packet_size", "ttl", "ip_id", "checksum",
    )}
    with path.open() as handle:
        header = handle.readline().strip()
        if header != _PACKET_HEADER:
            raise ValueError(f"unexpected packet CSV header in {path}")
        for line in handle:
            parts = line.strip().split(",")
            if len(parts) != 10:
                raise ValueError(f"malformed packet CSV row: {line!r}")
            columns["timestamp"].append(float(parts[0]))
            columns["src_ip"].append(ip_to_int(parts[1]))
            columns["dst_ip"].append(ip_to_int(parts[2]))
            columns["src_port"].append(int(parts[3]))
            columns["dst_port"].append(int(parts[4]))
            columns["protocol"].append(int(parts[5]))
            columns["packet_size"].append(int(parts[6]))
            columns["ttl"].append(int(parts[7]))
            columns["ip_id"].append(int(parts[8]))
            columns["checksum"].append(int(parts[9]))
    return PacketTrace(**{k: np.array(v) for k, v in columns.items()})


def write_packet_binary(trace: PacketTrace, path: Union[str, Path]) -> None:
    """Write a packet trace in the compact binary (pcap-like) format."""
    path = Path(path)
    with path.open("wb") as handle:
        handle.write(_PCAPISH_MAGIC)
        handle.write(struct.pack("<HH", _PCAPISH_VERSION, 0))
        handle.write(struct.pack("<Q", len(trace)))
        for i in range(len(trace)):
            handle.write(
                _PACKET_STRUCT.pack(
                    float(trace.timestamp[i]),
                    int(trace.src_ip[i]),
                    int(trace.dst_ip[i]),
                    int(trace.src_port[i]),
                    int(trace.dst_port[i]),
                    int(trace.protocol[i]) & 0xFF,
                    min(int(trace.packet_size[i]), 0xFFFF),
                    int(trace.ttl[i]) & 0xFF,
                    int(trace.ip_id[i]) & 0xFFFF,
                    int(trace.checksum[i]) & 0xFFFF,
                )
            )


def read_packet_binary(path: Union[str, Path]) -> PacketTrace:
    """Read a packet trace written by :func:`write_packet_binary`."""
    path = Path(path)
    with path.open("rb") as handle:
        magic = handle.read(4)
        if magic != _PCAPISH_MAGIC:
            raise ValueError(f"{path} is not a repro packet capture")
        version, _ = struct.unpack("<HH", handle.read(4))
        if version != _PCAPISH_VERSION:
            raise ValueError(f"unsupported capture version {version}")
        (count,) = struct.unpack("<Q", handle.read(8))
        raw = handle.read(count * _PACKET_STRUCT.size)
    if len(raw) != count * _PACKET_STRUCT.size:
        raise ValueError(f"{path} is truncated")
    rows = list(_PACKET_STRUCT.iter_unpack(raw))
    arr = np.array(rows, dtype=np.float64)
    if len(arr) == 0:
        arr = np.zeros((0, 10))
    return PacketTrace(
        timestamp=arr[:, 0],
        src_ip=arr[:, 1].astype(np.uint32),
        dst_ip=arr[:, 2].astype(np.uint32),
        src_port=arr[:, 3].astype(np.int64),
        dst_port=arr[:, 4].astype(np.int64),
        protocol=arr[:, 5].astype(np.int64),
        packet_size=arr[:, 6].astype(np.int64),
        ttl=arr[:, 7].astype(np.int64),
        ip_id=arr[:, 8].astype(np.int64),
        checksum=arr[:, 9].astype(np.int64),
    )
