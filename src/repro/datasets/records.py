"""Columnar containers for packet- and flow-header traces.

The paper operates on two record types (§3.1):

* **Flow header trace** (NetFlow-style): five-tuple + start time,
  duration, packets, bytes, and optional label/attack-type fields.
* **Packet header trace** (PCAP-style): five-tuple + per-packet
  timestamp, size, and the remaining IPv4 header fields we model
  (TTL, IP id; checksum is a *derived* field computed in
  post-processing, matching the paper's two-step generation).

Both are stored column-wise in numpy arrays so metric computation,
sketching, and GAN preprocessing are vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FlowTrace",
    "PacketTrace",
    "ip_to_int",
    "int_to_ip",
    "ips_to_ints",
    "ints_to_ips",
    "PROTO_TCP",
    "PROTO_UDP",
    "PROTO_ICMP",
    "PROTOCOL_NAMES",
    "ATTACK_TYPES",
]

PROTO_TCP = 6
PROTO_UDP = 17
PROTO_ICMP = 1

PROTOCOL_NAMES: Dict[int, str] = {
    PROTO_TCP: "TCP",
    PROTO_UDP: "UDP",
    PROTO_ICMP: "ICMP",
}

#: Attack taxonomy shared by the labelled NetFlow datasets (UGR16 /
#: CIDDS / TON descriptions in §6.1).  Code 0 is always benign.
ATTACK_TYPES: Dict[int, str] = {
    0: "benign",
    1: "dos",
    2: "portscan",
    3: "bruteforce",
    4: "ddos",
    5: "backdoor",
    6: "injection",
    7: "mitm",
    8: "ransomware",
    9: "scanning",
    10: "xss",
}


def ip_to_int(address: str) -> int:
    """Parse a dotted-quad IPv4 address into a 32-bit integer."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 octet in {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format a 32-bit integer as a dotted-quad IPv4 address."""
    value = int(value)
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 integer out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def ips_to_ints(addresses: Iterable[str]) -> np.ndarray:
    return np.array([ip_to_int(a) for a in addresses], dtype=np.uint32)


def ints_to_ips(values: Iterable[int]) -> List[str]:
    return [int_to_ip(v) for v in values]


def _as_column(values, dtype) -> np.ndarray:
    arr = np.asarray(values)
    return arr.astype(dtype, copy=False)


class _TraceBase:
    """Shared column-wise behaviour for flow and packet traces."""

    def __len__(self) -> int:
        return len(self._first_column())

    def _first_column(self) -> np.ndarray:
        first = dataclass_fields(self)[0].name
        return getattr(self, first)

    def _columns(self) -> Dict[str, np.ndarray]:
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}

    def subset(self, index) -> "_TraceBase":
        """Return a new trace keeping rows selected by mask/indices.

        Columns are copied, so mutating the subset never aliases the
        original trace (slices would otherwise return numpy views).
        """
        return type(self)(**{
            k: np.array(v[index], copy=True)
            for k, v in self._columns().items()
        })

    def validate(self) -> None:
        """Raise if columns disagree in length or contain invalid values."""
        n = len(self)
        for name, col in self._columns().items():
            if len(col) != n:
                raise ValueError(f"column {name} has length {len(col)} != {n}")

    @classmethod
    def concatenate(cls, traces: Sequence["_TraceBase"]) -> "_TraceBase":
        if not traces:
            raise ValueError("cannot concatenate an empty list of traces")
        columns = {}
        for f in dataclass_fields(traces[0]):
            columns[f.name] = np.concatenate([getattr(t, f.name) for t in traces])
        return cls(**columns)

    def five_tuple_keys(self) -> np.ndarray:
        """Return an array of structured five-tuple keys (one per record)."""
        keys = np.empty(
            len(self),
            dtype=[
                ("src_ip", np.uint32),
                ("dst_ip", np.uint32),
                ("src_port", np.int64),
                ("dst_port", np.int64),
                ("protocol", np.int64),
            ],
        )
        keys["src_ip"] = self.src_ip
        keys["dst_ip"] = self.dst_ip
        keys["src_port"] = self.src_port
        keys["dst_port"] = self.dst_port
        keys["protocol"] = self.protocol
        return keys

    def group_by_five_tuple(self) -> Dict[Tuple, np.ndarray]:
        """Map five-tuple -> sorted record indices belonging to that flow."""
        keys = self.five_tuple_keys()
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        boundaries = np.nonzero(sorted_keys[1:] != sorted_keys[:-1])[0] + 1
        groups: Dict[Tuple, np.ndarray] = {}
        start = 0
        for end in list(boundaries) + [len(self)]:
            idx = order[start:end]
            key = tuple(sorted_keys[start].item())
            groups[key] = np.sort(idx)
            start = end
        return groups


@dataclass
class FlowTrace(_TraceBase):
    """A NetFlow-style trace; 11 fields per record as in §6.1.

    Times are in milliseconds (matching the paper's TS/TD metric units).
    ``label`` is 0/1 benign/attack; ``attack_type`` indexes
    :data:`ATTACK_TYPES`.  Unlabelled datasets use all-zero columns.
    """

    src_ip: np.ndarray
    dst_ip: np.ndarray
    src_port: np.ndarray
    dst_port: np.ndarray
    protocol: np.ndarray
    start_time: np.ndarray
    duration: np.ndarray
    packets: np.ndarray
    bytes: np.ndarray
    label: np.ndarray = field(default=None)
    attack_type: np.ndarray = field(default=None)

    def __post_init__(self):
        self.src_ip = _as_column(self.src_ip, np.uint32)
        self.dst_ip = _as_column(self.dst_ip, np.uint32)
        self.src_port = _as_column(self.src_port, np.int64)
        self.dst_port = _as_column(self.dst_port, np.int64)
        self.protocol = _as_column(self.protocol, np.int64)
        self.start_time = _as_column(self.start_time, np.float64)
        self.duration = _as_column(self.duration, np.float64)
        self.packets = _as_column(self.packets, np.int64)
        self.bytes = _as_column(self.bytes, np.int64)
        n = len(self.src_ip)
        if self.label is None:
            self.label = np.zeros(n, dtype=np.int64)
        else:
            self.label = _as_column(self.label, np.int64)
        if self.attack_type is None:
            self.attack_type = np.zeros(n, dtype=np.int64)
        else:
            self.attack_type = _as_column(self.attack_type, np.int64)

    @property
    def end_time(self) -> np.ndarray:
        return self.start_time + self.duration

    def sort_by_time(self) -> "FlowTrace":
        return self.subset(np.argsort(self.start_time, kind="stable"))

    def validate(self) -> None:
        super().validate()
        if np.any(self.packets < 0) or np.any(self.bytes < 0):
            raise ValueError("packets/bytes must be non-negative")
        if np.any(self.duration < 0):
            raise ValueError("durations must be non-negative")
        if np.any((self.src_port < 0) | (self.src_port > 65535)):
            raise ValueError("source ports out of range")
        if np.any((self.dst_port < 0) | (self.dst_port > 65535)):
            raise ValueError("destination ports out of range")


@dataclass
class PacketTrace(_TraceBase):
    """A PCAP-style trace: IPv4 header fields + arrival timestamp.

    ``packet_size`` is the IP total length in bytes.  ``checksum`` is a
    derived field: it is excluded from learning (paper §4.2) and filled
    in by :mod:`repro.core.postprocess`.
    """

    timestamp: np.ndarray
    src_ip: np.ndarray
    dst_ip: np.ndarray
    src_port: np.ndarray
    dst_port: np.ndarray
    protocol: np.ndarray
    packet_size: np.ndarray
    ttl: np.ndarray = field(default=None)
    ip_id: np.ndarray = field(default=None)
    checksum: np.ndarray = field(default=None)

    def __post_init__(self):
        self.timestamp = _as_column(self.timestamp, np.float64)
        self.src_ip = _as_column(self.src_ip, np.uint32)
        self.dst_ip = _as_column(self.dst_ip, np.uint32)
        self.src_port = _as_column(self.src_port, np.int64)
        self.dst_port = _as_column(self.dst_port, np.int64)
        self.protocol = _as_column(self.protocol, np.int64)
        self.packet_size = _as_column(self.packet_size, np.int64)
        n = len(self.timestamp)
        if self.ttl is None:
            self.ttl = np.full(n, 64, dtype=np.int64)
        else:
            self.ttl = _as_column(self.ttl, np.int64)
        if self.ip_id is None:
            self.ip_id = np.zeros(n, dtype=np.int64)
        else:
            self.ip_id = _as_column(self.ip_id, np.int64)
        if self.checksum is None:
            self.checksum = np.zeros(n, dtype=np.int64)
        else:
            self.checksum = _as_column(self.checksum, np.int64)

    def sort_by_time(self) -> "PacketTrace":
        return self.subset(np.argsort(self.timestamp, kind="stable"))

    def validate(self) -> None:
        super().validate()
        if np.any(self.packet_size < 0):
            raise ValueError("packet sizes must be non-negative")
        if np.any((self.src_port < 0) | (self.src_port > 65535)):
            raise ValueError("source ports out of range")
        if np.any((self.dst_port < 0) | (self.dst_port > 65535)):
            raise ValueError("destination ports out of range")

    def flow_sizes(self) -> np.ndarray:
        """Number of packets per five-tuple flow (FS metric, Fig 1b)."""
        groups = self.group_by_five_tuple()
        return np.array([len(idx) for idx in groups.values()], dtype=np.int64)
