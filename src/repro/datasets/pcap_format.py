"""Real libpcap-format export of packet traces.

Unlike :mod:`repro.datasets.io`'s compact internal format, this module
writes genuine tcpdump-compatible captures: the classic libpcap global
header (magic 0xA1B2C3D4, version 2.4, LINKTYPE_RAW) followed by one
record per packet whose payload is a synthesized IPv4 header (+ TCP or
UDP header for L4 ports).  Generated traces can therefore be inspected
with tcpdump/tshark/wireshark — the hand-off the paper's data-sharing
story ends with.

Headers are built from the trace's fields; the IPv4 checksum is
computed per packet (matching ``repro.core.postprocess``); payload
bytes beyond the headers are zero-filled up to the recorded packet
size (captured length is truncated at ``snaplen``).
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Optional, Union

import numpy as np

from .records import PROTO_TCP, PROTO_UDP, PacketTrace

__all__ = ["write_pcap", "read_pcap", "build_ipv4_packet", "parse_ipv4_packet"]

_MAGIC = 0xA1B2C3D4
_MAGIC_SWAPPED = 0xD4C3B2A1
_MAGIC_NS = 0xA1B23C4D          # nanosecond-resolution captures
_MAGIC_NS_SWAPPED = 0x4D3CB2A1
_VERSION = (2, 4)
_LINKTYPE_RAW = 101  # raw IPv4/IPv6
_LINKTYPE_ETHERNET = 1
_ETHERTYPE_IPV4 = 0x0800
_ETHERTYPE_VLAN = 0x8100
_GLOBAL = struct.Struct("<IHHiIII")
_RECORD = struct.Struct("<IIII")
_IPV4 = struct.Struct("!BBHHHBBHII")
_UDP = struct.Struct("!HHHH")
# TCP header without options: sport dport seq ack off/flags win csum urg
_TCP = struct.Struct("!HHIIBBHHH")


def _ipv4_checksum(header: bytes) -> int:
    total = 0
    for i in range(0, len(header), 2):
        total += (header[i] << 8) | header[i + 1]
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def build_ipv4_packet(src_ip: int, dst_ip: int, protocol: int,
                      src_port: int, dst_port: int, total_length: int,
                      ttl: int = 64, ip_id: int = 0) -> bytes:
    """Serialise one packet's IPv4 (+L4) headers with zero payload."""
    protocol = int(protocol) & 0xFF
    if protocol == PROTO_TCP:
        l4_len = _TCP.size
    elif protocol == PROTO_UDP:
        l4_len = _UDP.size
    else:
        l4_len = 0
    total_length = max(int(total_length), 20 + l4_len)
    total_length = min(total_length, 65535)

    header = bytearray(_IPV4.pack(
        0x45, 0, total_length, int(ip_id) & 0xFFFF, 0,
        int(ttl) & 0xFF, protocol, 0,
        int(src_ip) & 0xFFFFFFFF, int(dst_ip) & 0xFFFFFFFF,
    ))
    checksum = _ipv4_checksum(bytes(header))
    header[10:12] = struct.pack("!H", checksum)

    if protocol == PROTO_TCP:
        l4 = _TCP.pack(int(src_port) & 0xFFFF, int(dst_port) & 0xFFFF,
                       0, 0, (5 << 4), 0x10,  # data offset 5, ACK flag
                       65535, 0, 0)
    elif protocol == PROTO_UDP:
        udp_len = max(total_length - 20, _UDP.size)
        l4 = _UDP.pack(int(src_port) & 0xFFFF, int(dst_port) & 0xFFFF,
                       min(udp_len, 0xFFFF), 0)
    else:
        l4 = b""
    payload = bytes(total_length - 20 - len(l4))
    return bytes(header) + l4 + payload


def parse_ipv4_packet(data: bytes) -> dict:
    """Parse the headers produced by :func:`build_ipv4_packet`."""
    if len(data) < 20:
        raise ValueError("packet shorter than an IPv4 header")
    (ver_ihl, _tos, total_length, ip_id, _frag, ttl, protocol,
     checksum, src_ip, dst_ip) = _IPV4.unpack(data[:20])
    if ver_ihl >> 4 != 4:
        raise ValueError("not an IPv4 packet")
    ihl = (ver_ihl & 0xF) * 4
    out = {
        "total_length": total_length, "ip_id": ip_id, "ttl": ttl,
        "protocol": protocol, "checksum": checksum,
        "src_ip": src_ip, "dst_ip": dst_ip,
        "src_port": 0, "dst_port": 0,
    }
    l4 = data[ihl:]
    if protocol == PROTO_TCP and len(l4) >= 4:
        out["src_port"], out["dst_port"] = struct.unpack("!HH", l4[:4])
    elif protocol == PROTO_UDP and len(l4) >= 4:
        out["src_port"], out["dst_port"] = struct.unpack("!HH", l4[:4])
    return out


def write_pcap(trace: PacketTrace, path: Union[str, Path],
               snaplen: int = 256) -> None:
    """Write a tcpdump-compatible capture of the trace.

    Timestamps (trace milliseconds) become epoch-relative seconds and
    microseconds; captured bytes are truncated at ``snaplen``.
    """
    if snaplen < 64:
        raise ValueError("snaplen must cover the headers (>= 64)")
    path = Path(path)
    with path.open("wb") as handle:
        handle.write(_GLOBAL.pack(_MAGIC, *_VERSION, 0, 0, snaplen,
                                  _LINKTYPE_RAW))
        for i in range(len(trace)):
            packet = build_ipv4_packet(
                trace.src_ip[i], trace.dst_ip[i], trace.protocol[i],
                trace.src_port[i], trace.dst_port[i],
                trace.packet_size[i], trace.ttl[i], trace.ip_id[i],
            )
            captured = packet[:snaplen]
            seconds, remainder = divmod(float(trace.timestamp[i]), 1000.0)
            handle.write(_RECORD.pack(
                int(seconds), int(remainder * 1000.0),
                len(captured), len(packet),
            ))
            handle.write(captured)


def _strip_link_layer(payload: bytes, linktype: int) -> Optional[bytes]:
    """Return the IPv4 payload of one captured frame, or None to skip."""
    if linktype == _LINKTYPE_RAW:
        return payload
    if linktype == _LINKTYPE_ETHERNET:
        if len(payload) < 14:
            return None
        ethertype = struct.unpack("!H", payload[12:14])[0]
        offset = 14
        # Unwrap (possibly stacked) 802.1Q VLAN tags.
        while ethertype == _ETHERTYPE_VLAN and len(payload) >= offset + 4:
            ethertype = struct.unpack(
                "!H", payload[offset + 2:offset + 4])[0]
            offset += 4
        if ethertype != _ETHERTYPE_IPV4:
            return None  # non-IPv4 frame (ARP, IPv6, ...)
        return payload[offset:]
    raise ValueError(f"unsupported link type {linktype}")


def read_pcap(path: Union[str, Path]) -> PacketTrace:
    """Read a classic libpcap capture (not only our own exports).

    Supports both byte orders, microsecond and nanosecond timestamp
    magics, and LINKTYPE_RAW or LINKTYPE_ETHERNET (with 802.1Q VLAN
    unwrapping).  Non-IPv4 frames are skipped.
    """
    path = Path(path)
    data = path.read_bytes()
    if len(data) < _GLOBAL.size:
        raise ValueError(f"{path} is not a pcap file")
    (magic,) = struct.unpack("<I", data[:4])
    if magic in (_MAGIC, _MAGIC_NS):
        endian = "<"
    elif magic in (_MAGIC_SWAPPED, _MAGIC_NS_SWAPPED):
        endian = ">"
    else:
        raise ValueError(f"{path} has unsupported pcap magic {magic:#x}")
    nanos = struct.unpack(endian + "I", data[:4])[0] in (_MAGIC_NS,)
    header = struct.Struct(endian + "IHHiIII")
    record = struct.Struct(endian + "IIII")
    _, major, minor, _tz, _sig, _snaplen, linktype = header.unpack(
        data[:header.size])
    if linktype not in (_LINKTYPE_RAW, _LINKTYPE_ETHERNET):
        raise ValueError(f"unsupported link type {linktype}")
    subsecond_divisor = 1_000_000.0 if nanos else 1000.0

    offset = header.size
    columns = {k: [] for k in (
        "timestamp", "src_ip", "dst_ip", "src_port", "dst_port",
        "protocol", "packet_size", "ttl", "ip_id", "checksum",
    )}
    while offset + record.size <= len(data):
        seconds, subsec, cap_len, orig_len = record.unpack(
            data[offset:offset + record.size])
        offset += record.size
        if offset + cap_len > len(data):
            raise ValueError(f"{path} is truncated")
        payload = _strip_link_layer(
            data[offset:offset + cap_len], linktype)
        offset += cap_len
        if payload is None:
            continue
        try:
            fields = parse_ipv4_packet(payload)
        except ValueError:
            continue  # malformed / non-IPv4 payload
        columns["timestamp"].append(
            seconds * 1000.0 + subsec / subsecond_divisor)
        columns["src_ip"].append(fields["src_ip"])
        columns["dst_ip"].append(fields["dst_ip"])
        columns["src_port"].append(fields["src_port"])
        columns["dst_port"].append(fields["dst_port"])
        columns["protocol"].append(fields["protocol"])
        columns["packet_size"].append(fields["total_length"]
                                      if linktype == _LINKTYPE_ETHERNET
                                      else orig_len)
        columns["ttl"].append(fields["ttl"])
        columns["ip_id"].append(fields["ip_id"])
        columns["checksum"].append(fields["checksum"])
    return PacketTrace(**{k: np.array(v) for k, v in columns.items()})
