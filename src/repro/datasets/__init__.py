"""Trace substrate: record containers, dataset profiles, synthesis, I/O.

The six evaluation datasets from the paper are available through
:func:`load_dataset`::

    from repro.datasets import load_dataset
    ugr16 = load_dataset("ugr16", n_records=2000, seed=0)   # FlowTrace
    caida = load_dataset("caida", n_records=2000, seed=0)   # PacketTrace
"""

from .records import (
    ATTACK_TYPES,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    PROTOCOL_NAMES,
    FlowTrace,
    PacketTrace,
    int_to_ip,
    ints_to_ips,
    ip_to_int,
    ips_to_ints,
)
from .schema import (
    NETFLOW_FIELDS,
    PCAP_FIELDS,
    PORT_PROTOCOL_MAP,
    SERVICE_PORTS,
    FieldKind,
    FieldSpec,
    bin_ports,
    fields_for,
)
from .synthetic import WorkloadProfile, generate_flow_trace, generate_packet_trace, zipf_weights
from .profiles import (
    DATASET_PROFILES,
    NETFLOW_DATASETS,
    PCAP_DATASETS,
    PUBLIC_DATASETS,
    get_profile,
    load_dataset,
)
from .io import (
    read_flow_csv,
    read_packet_binary,
    read_packet_csv,
    write_flow_csv,
    write_packet_binary,
    write_packet_csv,
)
from .splits import merge_epochs, split_epochs, train_test_split_by_time
from .anonymize import PrefixPreservingAnonymizer, anonymize_trace, truncate_ips
from .pcap_format import build_ipv4_packet, parse_ipv4_packet, read_pcap, write_pcap

__all__ = [
    "FlowTrace", "PacketTrace",
    "ip_to_int", "int_to_ip", "ips_to_ints", "ints_to_ips",
    "PROTO_TCP", "PROTO_UDP", "PROTO_ICMP", "PROTOCOL_NAMES", "ATTACK_TYPES",
    "FieldKind", "FieldSpec", "NETFLOW_FIELDS", "PCAP_FIELDS", "fields_for",
    "bin_ports",
    "PORT_PROTOCOL_MAP", "SERVICE_PORTS",
    "WorkloadProfile", "generate_flow_trace", "generate_packet_trace",
    "zipf_weights",
    "DATASET_PROFILES", "NETFLOW_DATASETS", "PCAP_DATASETS", "PUBLIC_DATASETS",
    "get_profile", "load_dataset",
    "write_flow_csv", "read_flow_csv", "write_packet_csv", "read_packet_csv",
    "write_packet_binary", "read_packet_binary",
    "split_epochs", "merge_epochs", "train_test_split_by_time",
    "PrefixPreservingAnonymizer", "anonymize_trace", "truncate_ips",
    "write_pcap", "read_pcap", "build_ipv4_packet", "parse_ipv4_packet",
]
