"""Epoch and train/test splitting utilities.

The problem formulation (§3.1) receives traces split into *n*
consecutive measurement epochs D_t; NetShare's Insight 1 merges those
epochs back into one giant trace.  The downstream prediction task
(Fig 11) sorts by timestamp and splits 80%:20% into earlier-train /
later-test.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["split_epochs", "merge_epochs", "train_test_split_by_time"]


def _time_column(trace) -> np.ndarray:
    if hasattr(trace, "start_time"):
        return trace.start_time
    return trace.timestamp


def split_epochs(trace, n_epochs: int) -> List:
    """Split a trace into ``n_epochs`` consecutive equal-time epochs."""
    if n_epochs < 1:
        raise ValueError("need at least one epoch")
    times = _time_column(trace)
    if len(times) == 0:
        return [trace.subset(slice(0, 0)) for _ in range(n_epochs)]
    lo, hi = float(times.min()), float(times.max())
    edges = np.linspace(lo, hi, n_epochs + 1)
    edges[-1] = np.inf
    epochs = []
    for i in range(n_epochs):
        mask = (times >= edges[i]) & (times < edges[i + 1])
        epochs.append(trace.subset(mask))
    return epochs


def merge_epochs(epochs: List):
    """Merge epoch traces back into one giant trace, sorted by time
    (NetShare Insight 1's 'giant trace D')."""
    if not epochs:
        raise ValueError("no epochs to merge")
    merged = type(epochs[0]).concatenate(epochs)
    return merged.sort_by_time()


def train_test_split_by_time(trace, train_fraction: float = 0.8) -> Tuple:
    """Sort by time; earlier ``train_fraction`` trains, the rest tests
    (the Fig 11 setup for the traffic-type prediction task)."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    ordered = trace.sort_by_time()
    cut = int(len(ordered) * train_fraction)
    return ordered.subset(slice(0, cut)), ordered.subset(slice(cut, len(ordered)))
