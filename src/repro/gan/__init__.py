"""Time-series GAN substrate (DoppelGANger building block)."""

from .doppelganger import DgConfig, DoppelGANger, TrainingLog

__all__ = ["DgConfig", "DoppelGANger", "TrainingLog"]
