"""DoppelGANger-style time-series GAN (Lin et al., IMC 2020) — the
generative core NetShare builds on (§4.1 Insight 1, Appendix C).

Architecture, following the paper's configuration notes:

* a *metadata generator* (MLP) maps noise to the flow's metadata
  (encoded five-tuple + flow tags),
* a *measurement generator* (GRU) conditioned on the metadata emits
  per-timestep measurements plus a generation flag (DoppelGANger's
  variable-length mechanism),
* a *joint discriminator* scores (metadata, masked measurements,
  flags); an *auxiliary discriminator* on metadata alone is enabled
  (Appendix C: "auxiliary discriminator is enabled"),
* Wasserstein loss with gradient penalty (WGAN-GP), Adam(beta1=0.5),
* continuous features live in [0, 1] ("[0,1] normalization for the
  continuous fields"); auto-normalisation and packing are not used,
  matching Appendix C.

DP training privatises the discriminators with DP-SGD (clip + noise)
— the generator never touches real data, so its updates are
post-processing.  In DP mode the gradient penalty is replaced by
weight clipping (original WGAN) to keep per-example gradients cheap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.flow_encoder import EncodedFlows
from ..telemetry import emit_event
from ..telemetry.spans import span
from ..telemetry.state import STATE as _TELEMETRY
from ..nn import (
    Adam,
    Dense,
    GRUCell,
    Module,
    Sequential,
    Tensor,
    concatenate,
    grad,
    no_grad,
    stack,
    tensor,
)
from ..nn.tape import (
    LiveRng,
    bucket_size,
    compiled_infer,
    compiled_step,
    k_gather,
    ka as _ka,
    taped_draw,
)
from ..privacy.dpsgd import DpSgdConfig, privatize_gradients

__all__ = ["DgConfig", "DoppelGANger", "TrainingLog"]


@dataclass
class DgConfig:
    """DoppelGANger hyperparameters (defaults sized for numpy training).

    ``metadata_segments`` optionally structures the metadata output:
    a list of ``("sigmoid", width)`` segments (bits, tags) and
    ``("anchor", matrix)`` segments whose output is a Gumbel-softmax
    mixture over the fixed (K, d) anchor matrix — used for IP2Vec-
    embedded fields so the generator selects among real dictionary
    points rather than free-form vectors.  When omitted, the whole
    metadata vector is one sigmoid segment.
    """

    metadata_dim: int = 0
    measurement_dim: int = 0
    max_timesteps: int = 8
    noise_dim: int = 12
    meta_hidden: int = 48
    rnn_hidden: int = 48
    disc_hidden: int = 64
    n_critic: int = 2
    gp_weight: float = 10.0
    aux_weight: float = 1.0
    lr: float = 1e-3
    batch_size: int = 32
    use_aux_discriminator: bool = True
    metadata_segments: Optional[list] = None
    gumbel_temperature: float = 0.5

    def __post_init__(self):
        if self.metadata_dim < 1 or self.measurement_dim < 1:
            raise ValueError("metadata_dim and measurement_dim are required")
        if self.max_timesteps < 1:
            raise ValueError("max_timesteps must be positive")
        if self.n_critic < 1:
            raise ValueError("n_critic must be >= 1")
        if self.metadata_segments is not None:
            total = 0
            for seg in self.metadata_segments:
                tag, payload = seg[0], seg[1]
                if tag == "sigmoid":
                    total += int(payload)
                elif tag == "anchor":
                    total += int(np.asarray(payload).shape[1])
                else:
                    raise ValueError(f"unknown metadata segment {tag!r}")
            if total != self.metadata_dim:
                raise ValueError(
                    f"metadata segments sum to {total} != {self.metadata_dim}"
                )


@dataclass
class TrainingLog:
    """Per-epoch loss curves and timing (used by the scalability bench)."""

    d_loss: List[float] = field(default_factory=list)
    g_loss: List[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    steps: int = 0


class _MetadataGenerator(Module):
    """MLP trunk with per-segment heads (sigmoid or anchor-mixture)."""

    def __init__(self, config: DgConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.trunk = Sequential(
            Dense(config.noise_dim, config.meta_hidden, "relu", rng=rng),
            Dense(config.meta_hidden, config.meta_hidden, "relu", rng=rng),
        )
        self.segments = config.metadata_segments or [
            ("sigmoid", config.metadata_dim)
        ]
        self._anchors = []
        # Heads see the raw noise alongside the trunk features (a skip
        # connection) — this measurably improves per-sample diversity
        # of the anchor mixtures at small training budgets.
        head_in = config.meta_hidden + config.noise_dim
        for i, seg in enumerate(self.segments):
            tag, payload = seg[0], seg[1]
            if tag == "sigmoid":
                head = Dense(head_in, int(payload), "sigmoid", rng=rng)
                self._anchors.append(None)
            else:
                anchors = np.asarray(payload, dtype=np.float64)
                head = Dense(head_in, len(anchors), "linear", rng=rng)
                if len(seg) > 2 and seg[2] is not None:
                    # Public-frequency prior: start the anchor mixture
                    # at the public token distribution (Insight 4).
                    head.bias.data = np.asarray(seg[2], dtype=np.float64).copy()
                self._anchors.append(Tensor(anchors))  # fixed, not trained
            setattr(self, f"head{i}", head)

    def forward(self, z: Tensor, rng: np.random.Generator,
                hard: bool = False) -> Tensor:
        from ..nn.functional import gumbel_softmax

        h = concatenate([self.trunk(z), z], axis=-1)
        parts = []
        for i, seg in enumerate(self.segments):
            tag = seg[0]
            head = getattr(self, f"head{i}")
            out = head(h)
            if tag == "anchor":
                # Soft samples during training (smooth gradients); hard
                # one-hot at generation so emitted embeddings are exact
                # dictionary points for the nearest-neighbour decode.
                probs = gumbel_softmax(
                    out, temperature=self.config.gumbel_temperature,
                    rng=rng, hard=hard,
                )
                out = probs @ self._anchors[i]
            parts.append(out)
        return concatenate(parts, axis=-1)


class _MeasurementGenerator(Module):
    """GRU emitting (measurement, generation flag) per timestep."""

    def __init__(self, config: DgConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        input_dim = config.noise_dim + config.metadata_dim
        self.cell = GRUCell(input_dim, config.rnn_hidden, rng=rng)
        self.head_meas = Dense(config.rnn_hidden, config.measurement_dim,
                               "sigmoid", rng=rng)
        self.head_flag = Dense(config.rnn_hidden, 1, "sigmoid", rng=rng)

    def forward(self, metadata: Tensor, noise: np.ndarray):
        """noise is (batch, T, noise_dim); returns (meas, flags) tensors."""
        batch, t_max = noise.shape[0], noise.shape[1]
        h = self.cell.initial_state(batch)
        measurements, flags = [], []
        for t in range(t_max):
            step_in = concatenate([tensor(noise[:, t, :]), metadata], axis=-1)
            h = self.cell(step_in, h)
            measurements.append(self.head_meas(h))
            flags.append(self.head_flag(h))
        return stack(measurements, axis=1), concatenate(flags, axis=-1)


class _Discriminator(Module):
    def __init__(self, input_dim: int, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.net = Sequential(
            Dense(input_dim, hidden, "leaky_relu", rng=rng),
            Dense(hidden, hidden, "leaky_relu", rng=rng),
            Dense(hidden, 1, "linear", rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


def _flatten_sample(metadata: Tensor, measurements: Tensor,
                    flags: Tensor) -> Tensor:
    """Joint discriminator input: [meta, masked measurements, flags]."""
    batch = metadata.shape[0]
    t_max, d = measurements.shape[1], measurements.shape[2]
    masked = measurements * flags.reshape(batch, t_max, 1)
    return concatenate(
        [metadata, masked.reshape(batch, t_max * d), flags], axis=-1
    )


def _with_batch_stats(flat: Tensor) -> Tensor:
    """Append the batch mean to every sample (minibatch statistics).

    A per-sample critic can detect *support* mismatch but not
    *histogram imbalance* (e.g. one anchor over-represented); showing
    it the batch mean gives it — and, through it, the generator — a
    gradient signal for marginal mode balance.  The original
    DoppelGANger relies on scale instead ('packing is not used'); at
    numpy scale this is the cheap equivalent.
    """
    mean = flat.mean(axis=0, keepdims=True)
    return concatenate([flat, mean.broadcast_to(flat.shape)], axis=-1)


class DoppelGANger:
    """The time-series GAN with fit / fine-tune / DP-fit / generate."""

    def __init__(self, config: DgConfig, seed: int = 0):
        self.config = config
        rng = np.random.default_rng(seed)
        self.gen_meta = _MetadataGenerator(config, rng)
        self.gen_meas = _MeasurementGenerator(config, rng)
        joint_dim = (config.metadata_dim
                     + config.max_timesteps * config.measurement_dim
                     + config.max_timesteps)
        # Critic inputs are doubled by the appended batch-mean features.
        self.disc = _Discriminator(2 * joint_dim, config.disc_hidden, rng)
        self.disc_aux = (
            _Discriminator(2 * config.metadata_dim, config.disc_hidden, rng)
            if config.use_aux_discriminator else None
        )
        self._rng = rng
        self.log = TrainingLog()

        self._g_params = self.gen_meta.parameters() + self.gen_meas.parameters()
        self._d_params = self.disc.parameters() + (
            self.disc_aux.parameters() if self.disc_aux else []
        )
        self._g_opt = Adam(self._g_params, lr=config.lr, beta1=0.5)
        self._d_opt = Adam(self._d_params, lr=config.lr, beta1=0.5)

        # Plan/execute split: each step body records an execution tape
        # on first run per shape signature and replays it afterwards
        # (see repro.nn.tape).  REPRO_NN_TAPE=0 keeps every step on the
        # eager bodies below.
        self._c_disc = compiled_step(self._disc_core, "dg.disc")
        self._c_gen = compiled_step(self._gen_core, "dg.gen")
        self._c_dp_disc = compiled_step(self._dp_disc_core, "dg.dp_disc")
        # Generation runs as a forward-only tape per bucketed batch
        # size; the LiveRng proxy lets per-call seeds feed replayed
        # draws (the tape captured the proxy, not the generator).
        self._infer_rng = LiveRng(rng)
        self._c_infer = compiled_infer(self._infer_core, "dg.infer")

    # ------------------------------------------------------------------
    def num_parameters(self) -> int:
        return sum(p.size for p in self._g_params + self._d_params)

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {}
        for prefix, module in self._named_modules():
            for name, p in module.named_parameters():
                state[f"{prefix}.{name}"] = p.data.copy()
        return state

    @classmethod
    def from_state(cls, config: DgConfig, state: Dict[str, np.ndarray],
                   seed: int = 0, log: Optional[TrainingLog] = None,
                   ) -> "DoppelGANger":
        """Construct-from-state factory (the runtime's reassembly path).

        Builds a model with the given config/seed and overwrites its
        parameters with ``state`` — e.g. weights trained by a
        :func:`repro.runtime.chunk_tasks.train_chunk` worker, or loaded
        from a ``NetShare.save`` archive.  Passing the same ``seed``
        used at training time keeps any later in-process sampling
        (``generate`` without an explicit seed) reproducible.
        """
        model = cls(config, seed=seed)
        model.load_state_dict(state)
        if log is not None:
            model.log = log
        return model

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for prefix, module in self._named_modules():
            sub = {
                name[len(prefix) + 1:]: value
                for name, value in state.items()
                if name.startswith(prefix + ".")
            }
            module.load_state_dict(sub)

    def _named_modules(self):
        modules = [("gen_meta", self.gen_meta), ("gen_meas", self.gen_meas),
                   ("disc", self.disc)]
        if self.disc_aux is not None:
            modules.append(("disc_aux", self.disc_aux))
        return modules

    # ------------------------------------------------------------------
    def _sample_fake(self, batch: int):
        z_meta = taped_draw(lambda: self._rng.normal(
            size=(batch, self.config.noise_dim)))
        z_meas = taped_draw(lambda: self._rng.normal(
            size=(batch, self.config.max_timesteps, self.config.noise_dim)))
        metadata = self.gen_meta(tensor(z_meta), self._rng)
        measurements, flags = self.gen_meas(metadata, z_meas)
        return metadata, measurements, flags

    def _real_batch(self, data: EncodedFlows, indices: np.ndarray):
        return (
            tensor(k_gather(data.metadata, indices)),
            tensor(k_gather(data.measurements, indices)),
            tensor(k_gather(data.gen_flags, indices)),
        )

    def _gradient_penalty(self, critic: Module, real_flat: Tensor,
                          fake_flat: Tensor) -> Tensor:
        batch = real_flat.shape[0]
        eps = taped_draw(lambda: self._rng.uniform(size=(batch, 1)))
        # eps*real + (1-eps)*fake as explicit kernels (same order the
        # expression evaluates in, so bitwise unchanged).
        x_hat = tensor(
            _ka(np.add, _ka(np.multiply, eps, real_flat.data),
                _ka(np.multiply, _ka(np.subtract, 1.0, eps),
                    fake_flat.data)),
            requires_grad=True,
        )
        d_hat = critic(x_hat)
        (gx,) = grad(d_hat.sum(), [x_hat], create_graph=True)
        norms = (gx.square().sum(axis=1) + 1e-12).sqrt()
        # One-sided penalty: only gradients above norm 1 are punished.
        # The two-sided form pins the critic's slope magnitude at 1,
        # which can trap a wrongly-oriented critic behind an energy
        # barrier at tiny scale; the one-sided variant lets it reorient.
        from ..nn import maximum
        excess = maximum(norms - 1.0, Tensor(np.zeros(norms.shape)))
        return excess.square().mean()

    # ------------------------------------------------------------------
    def _disc_step(self, data: EncodedFlows, batch_size: int) -> float:
        # One compiled step per signature: the wrapper opens the
        # step_scope, records the eager body once, and replays the tape
        # on warm steps.  Nothing pooled escapes: the loss leaves as a
        # float.  The key pins the data arrays by identity — chunked
        # fine-tuning swaps them, recording a fresh tape.
        b = min(batch_size, len(data))
        key = (id(data.metadata), id(data.measurements),
               id(data.gen_flags), b)
        return self._c_disc.run(key, data, b)

    def _disc_core(self, data: EncodedFlows, b: int) -> Tensor:
        n = len(data)
        idx = taped_draw(lambda: self._rng.integers(0, n, size=b))
        real = self._real_batch(data, idx)
        with no_grad():
            fake = self._sample_fake(b)
        fake = tuple(t.detach() for t in fake)

        real_flat = _with_batch_stats(_flatten_sample(*real))
        fake_flat = _with_batch_stats(_flatten_sample(*fake))
        loss = (self.disc(fake_flat).mean() - self.disc(real_flat).mean()
                + self.config.gp_weight
                * self._gradient_penalty(self.disc, real_flat, fake_flat))
        if self.disc_aux is not None:
            real_meta = _with_batch_stats(real[0])
            fake_meta = _with_batch_stats(fake[0])
            loss = loss + self.config.aux_weight * (
                self.disc_aux(fake_meta).mean()
                - self.disc_aux(real_meta).mean()
                + self.config.gp_weight
                * self._gradient_penalty(self.disc_aux, real_meta,
                                         fake_meta)
            )
        self._d_opt.step(grad(loss, self._d_params))
        return loss

    def _gen_step(self, batch_size: int) -> float:
        return self._c_gen.run((batch_size,), batch_size)

    def _gen_core(self, batch_size: int) -> Tensor:
        metadata, measurements, flags = self._sample_fake(batch_size)
        fake_flat = _with_batch_stats(
            _flatten_sample(metadata, measurements, flags))
        loss = -self.disc(fake_flat).mean()
        if self.disc_aux is not None:
            loss = loss - self.config.aux_weight * self.disc_aux(
                _with_batch_stats(metadata)).mean()
        self._g_opt.step(grad(loss, self._g_params))
        return loss

    def fit(self, data: EncodedFlows, epochs: int = 20,
            verbose: bool = False) -> TrainingLog:
        """Adversarial training on one chunk's encoded flows."""
        self._validate_data(data)
        if epochs < 1:
            raise ValueError("need at least one epoch")
        start = time.perf_counter()
        n = len(data)
        # Small chunks would otherwise see almost no updates per epoch;
        # floor the step count so training effort scales sensibly.
        steps_per_epoch = max(2, n // self.config.batch_size)
        with span("dg.fit", epochs=epochs, records=n):
            for epoch in range(epochs):
                epoch_start = time.perf_counter()
                d_losses, g_losses = [], []
                with span("dg.epoch", epoch=epoch):
                    for _ in range(steps_per_epoch):
                        for _ in range(self.config.n_critic):
                            d_losses.append(
                                self._disc_step(data, self.config.batch_size))
                        g_losses.append(self._gen_step(self.config.batch_size))
                        self.log.steps += 1
                self.log.d_loss.append(float(np.mean(d_losses)))
                self.log.g_loss.append(float(np.mean(g_losses)))
                if _TELEMETRY.enabled:
                    _TELEMETRY.registry.histogram(
                        "gan.epoch_seconds").observe(
                        time.perf_counter() - epoch_start)
                    emit_event("epoch", model="doppelganger", epoch=epoch,
                               d_loss=self.log.d_loss[-1],
                               g_loss=self.log.g_loss[-1])
                if verbose:
                    print(f"epoch {epoch}: D={self.log.d_loss[-1]:.4f} "
                          f"G={self.log.g_loss[-1]:.4f}")
        self.log.wall_seconds += time.perf_counter() - start
        return self.log

    def fine_tune(self, data: EncodedFlows, epochs: int = 5) -> TrainingLog:
        """Insight 3: continue training from the current (warm) weights.

        Optimizer moments are reset so the fine-tune step behaves like
        the paper's per-chunk fine-tuning from the seed-chunk model.
        """
        self._g_opt.reset_state()
        self._d_opt.reset_state()
        return self.fit(data, epochs=epochs)

    # ------------------------------------------------------------------
    def fit_dp(self, data: EncodedFlows, epochs: int,
               dp_config: DpSgdConfig, clip_weights: float = 0.1,
               seed: int = 0) -> TrainingLog:
        """DP-SGD training: discriminator gradients are per-example
        clipped and noised; the generator update is post-processing.
        Weight clipping replaces the gradient penalty (WGAN style)."""
        self._validate_data(data)
        noise_rng = np.random.default_rng(seed)
        start = time.perf_counter()
        n = len(data)
        steps_per_epoch = max(2, n // self.config.batch_size)
        with span("dg.fit_dp", epochs=epochs, records=n):
            for epoch in range(epochs):
                epoch_start = time.perf_counter()
                d_losses, g_losses = [], []
                with span("dg.epoch", epoch=epoch):
                    for _ in range(steps_per_epoch):
                        for _ in range(self.config.n_critic):
                            d_losses.append(
                                self._dp_disc_step(data, dp_config, noise_rng)
                            )
                        g_losses.append(self._gen_step(self.config.batch_size))
                        for p in self._d_params:
                            np.clip(p.data, -clip_weights, clip_weights,
                                    out=p.data)
                        self.log.steps += 1
                self.log.d_loss.append(float(np.mean(d_losses)))
                self.log.g_loss.append(float(np.mean(g_losses)))
                if _TELEMETRY.enabled:
                    _TELEMETRY.registry.histogram(
                        "gan.epoch_seconds").observe(
                        time.perf_counter() - epoch_start)
                    emit_event("epoch", model="doppelganger", epoch=epoch,
                               mode="dp", d_loss=self.log.d_loss[-1],
                               g_loss=self.log.g_loss[-1])
        self.log.wall_seconds += time.perf_counter() - start
        return self.log

    def _dp_disc_step(self, data: EncodedFlows, dp_config: DpSgdConfig,
                      noise_rng: np.random.Generator) -> float:
        b = min(self.config.batch_size, len(data))
        key = (id(data.metadata), id(data.measurements),
               id(data.gen_flags), id(dp_config), id(noise_rng), b)
        losses = self._c_dp_disc.run(key, data, b, dp_config, noise_rng)
        return float(np.mean(losses))

    def _dp_disc_core(self, data: EncodedFlows, b: int,
                      dp_config: DpSgdConfig,
                      noise_rng: np.random.Generator) -> List[Tensor]:
        # The per-example gradient lists are pooled buffers, so the
        # whole step — including privatize_gradients, which consumes
        # them — sits inside one compiled region.
        idx = taped_draw(lambda: self._rng.integers(0, len(data), size=b))
        with no_grad():
            fake = self._sample_fake(b)
        fake = tuple(t.detach() for t in fake)
        fake_flat_all = _flatten_sample(*fake)

        per_example = []
        losses = []
        for j in range(b):
            # View slices of the taped index buffer, so a replayed tape
            # gathers whatever rows the fresh draw selects.
            real = self._real_batch(data, idx[j:j + 1])
            # Per-example DP gradients: each example forms its own
            # "batch", so the batch-mean feature equals the sample.
            real_flat = _with_batch_stats(_flatten_sample(*real))
            fake_j = _with_batch_stats(fake_flat_all[j:j + 1])
            loss = self.disc(fake_j).mean() - self.disc(real_flat).mean()
            if self.disc_aux is not None:
                loss = loss + self.config.aux_weight * (
                    self.disc_aux(
                        _with_batch_stats(fake[0][j:j + 1])).mean()
                    - self.disc_aux(_with_batch_stats(real[0])).mean()
                )
            grads = grad(loss, self._d_params)
            per_example.append([g.data for g in grads])
            losses.append(loss)
        noisy = privatize_gradients(per_example, dp_config, noise_rng)
        self._d_opt.step(noisy)
        return losses

    # ------------------------------------------------------------------
    def _infer_core(self, n: int):
        """One no-grad sampler forward at batch size ``n`` (a bucket
        value).  Runs under ``compiled_infer``: recorded once per
        bucket, replayed warm with the draws re-drawn through the
        LiveRng proxy in recorded stream order."""
        rng = self._infer_rng
        z_meta = taped_draw(lambda: rng.normal(
            size=(n, self.config.noise_dim)))
        z_meas = taped_draw(lambda: rng.normal(
            size=(n, self.config.max_timesteps, self.config.noise_dim)))
        metadata = self.gen_meta(tensor(z_meta), rng, hard=False)
        measurements, flags = self.gen_meas(metadata, z_meas)
        return [metadata, measurements, flags]

    def generate(self, n: int, seed: Optional[int] = None) -> EncodedFlows:
        """Sample n synthetic flows (tensor form; decode with the
        FlowTensorEncoder).

        The request is padded up to :func:`~repro.nn.tape.bucket_size`
        and sliced back, so service-style calls of varying size replay
        a handful of warm tapes instead of recording per size.  The
        padding is part of the sampler's semantics — the eager oracle
        (``REPRO_NN_TAPE=0``) pads identically, so eager and compiled
        sampling stay bit-identical for every ``n``.
        """
        if n < 1:
            raise ValueError("must generate at least one flow")
        rng = np.random.default_rng(seed) if seed is not None else self._rng
        n_pad = bucket_size(n)
        self._infer_rng.rng = rng
        metadata, measurements, flags = self._c_infer.run((n_pad,), n_pad)
        metadata = metadata[:n]
        measurements = measurements[:n]
        flags = flags[:n]
        # Generation flags: active prefix up to the first sub-0.5 flag;
        # every flow emits at least one record.  argmin finds the first
        # False per row (bitwise-identical to the per-flow loop it
        # replaced); all-active rows keep the full horizon.
        active = flags > 0.5
        stop = np.where(active.all(axis=1), active.shape[1],
                        np.argmin(active, axis=1))
        stop = np.maximum(stop, 1)
        hard_flags = (np.arange(active.shape[1])[None, :]
                      < stop[:, None]).astype(flags.dtype)
        return EncodedFlows(metadata, measurements, hard_flags)

    def _validate_data(self, data: EncodedFlows) -> None:
        c = self.config
        if data.metadata.shape[1] != c.metadata_dim:
            raise ValueError(
                f"metadata width {data.metadata.shape[1]} != {c.metadata_dim}")
        if data.measurements.shape[1:] != (c.max_timesteps, c.measurement_dim):
            raise ValueError("measurement tensor shape mismatch")
        if len(data) == 0:
            raise ValueError("training data is empty")
