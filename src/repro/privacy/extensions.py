"""Optional domain-specific privacy extensions (paper §5).

The paper implements two post-hoc extensions applied to generated
traces:

1. *IP transformation*: map synthetic IPs into a user-specified range
   (default: the RFC1918 10.0.0.0/8 private range), preserving the
   popularity structure while detaching addresses from any real space.
2. *Attribute retraining*: resample a chosen attribute (IPs, ports,
   protocol) to a user-desired distribution.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..datasets.records import ip_to_int

__all__ = ["transform_ips", "retrain_attribute"]


def transform_ips(trace, base: str = "10.0.0.0", prefix_len: int = 8,
                  seed: int = 0):
    """Remap src/dst IPs into the range ``base``/``prefix_len``.

    Distinct original addresses stay distinct (a random bijection into
    the target host space), so popularity ranks — and therefore heavy
    hitters — are preserved.
    """
    if not 0 < prefix_len < 32:
        raise ValueError("prefix length must be in (0, 32)")
    host_bits = 32 - prefix_len
    space = 1 << host_bits
    base_int = ip_to_int(base) & (~(space - 1) & 0xFFFFFFFF)
    rng = np.random.default_rng(seed)

    originals = np.unique(np.concatenate([trace.src_ip, trace.dst_ip]))
    if len(originals) > space:
        raise ValueError(
            f"{len(originals)} distinct IPs do not fit in a /{prefix_len}"
        )
    hosts = rng.choice(space, size=len(originals), replace=False)
    mapping = {
        int(orig): np.uint32(base_int + int(h))
        for orig, h in zip(originals, hosts)
    }
    out = trace.subset(slice(None))
    out.src_ip = np.array([mapping[int(v)] for v in trace.src_ip],
                          dtype=np.uint32)
    out.dst_ip = np.array([mapping[int(v)] for v in trace.dst_ip],
                          dtype=np.uint32)
    return out


def retrain_attribute(trace, attribute: str,
                      distribution: Dict[int, float], seed: int = 0):
    """Resample ``attribute`` i.i.d. from a user-specified distribution.

    ``distribution`` maps value -> probability (normalised internally).
    """
    if attribute not in ("src_port", "dst_port", "protocol", "src_ip", "dst_ip"):
        raise ValueError(f"unsupported attribute {attribute!r}")
    if not distribution:
        raise ValueError("distribution must be non-empty")
    values = np.array(sorted(distribution), dtype=np.int64)
    probs = np.array([distribution[v] for v in values], dtype=np.float64)
    if np.any(probs < 0):
        raise ValueError("probabilities must be non-negative")
    total = probs.sum()
    if total <= 0:
        raise ValueError("distribution has zero mass")
    probs = probs / total

    rng = np.random.default_rng(seed)
    out = trace.subset(slice(None))
    sampled = rng.choice(values, size=len(trace), p=probs)
    dtype = np.uint32 if attribute.endswith("_ip") else np.int64
    setattr(out, attribute, sampled.astype(dtype))
    return out
