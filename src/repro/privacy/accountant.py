"""Rényi differential privacy accountant for DP-SGD.

NetShare's DP training uses DP-SGD (clip + Gaussian noise); the privacy
cost of T steps with sampling rate q and noise multiplier sigma is
tracked in Rényi DP and converted to (epsilon, delta)-DP, as
tensorflow-privacy did for the original implementation.

The subsampled-Gaussian RDP bound at integer order alpha follows
Mironov, Talwar & Zhang (2019) / Abadi et al. (2016)::

    RDP(alpha) = 1/(alpha-1) * log( sum_{k=0}^{alpha} C(alpha,k)
                 (1-q)^(alpha-k) q^k exp(k(k-1)/(2 sigma^2)) )

computed in log space for stability.  Conversion:
``eps = min_alpha [ T * RDP(alpha) + log(1/delta)/(alpha-1) ]``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np
from scipy.special import gammaln, logsumexp

__all__ = ["RdpAccountant", "compute_epsilon", "noise_multiplier_for_epsilon"]

DEFAULT_ORDERS = tuple(range(2, 65))


def _log_binom(n: int, k: np.ndarray) -> np.ndarray:
    return gammaln(n + 1) - gammaln(k + 1) - gammaln(n - k + 1)


def _rdp_subsampled_gaussian(q: float, sigma: float, alpha: int) -> float:
    """Per-step RDP at integer order alpha."""
    if q == 0.0:
        return 0.0
    if q == 1.0:
        # No subsampling amplification: plain Gaussian mechanism.
        return alpha / (2.0 * sigma**2)
    k = np.arange(alpha + 1, dtype=np.float64)
    log_terms = (
        _log_binom(alpha, k)
        + (alpha - k) * np.log1p(-q)
        + k * np.log(q)
        + k * (k - 1) / (2.0 * sigma**2)
    )
    return float(logsumexp(log_terms) / (alpha - 1))


class RdpAccountant:
    """Accumulates RDP over DP-SGD steps and reports (eps, delta)."""

    def __init__(self, orders: Sequence[int] = DEFAULT_ORDERS):
        orders = tuple(int(a) for a in orders)
        if any(a < 2 for a in orders):
            raise ValueError("RDP orders must be integers >= 2")
        self.orders = orders
        self._rdp = np.zeros(len(orders))

    def step(self, noise_multiplier: float, sampling_rate: float,
             num_steps: int = 1) -> "RdpAccountant":
        """Record ``num_steps`` subsampled-Gaussian DP-SGD steps."""
        if noise_multiplier <= 0:
            raise ValueError("noise multiplier must be positive")
        if not 0 <= sampling_rate <= 1:
            raise ValueError("sampling rate must be in [0, 1]")
        if num_steps < 0:
            raise ValueError("cannot take a negative number of steps")
        increment = np.array([
            _rdp_subsampled_gaussian(sampling_rate, noise_multiplier, a)
            for a in self.orders
        ])
        self._rdp += num_steps * increment
        return self

    def get_epsilon(self, delta: float = 1e-5) -> float:
        """Best (epsilon, delta) conversion over the order grid."""
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        orders = np.array(self.orders, dtype=np.float64)
        eps = self._rdp + np.log(1.0 / delta) / (orders - 1.0)
        return float(eps.min())


def compute_epsilon(noise_multiplier: float, sampling_rate: float,
                    num_steps: int, delta: float = 1e-5,
                    orders: Sequence[int] = DEFAULT_ORDERS) -> float:
    """One-shot epsilon for a fixed DP-SGD configuration."""
    accountant = RdpAccountant(orders)
    accountant.step(noise_multiplier, sampling_rate, num_steps)
    return accountant.get_epsilon(delta)


def noise_multiplier_for_epsilon(
    target_epsilon: float,
    sampling_rate: float,
    num_steps: int,
    delta: float = 1e-5,
    low: float = 0.05,
    high: float = 200.0,
) -> float:
    """Binary-search the noise multiplier hitting a target epsilon.

    This is how the privacy-fidelity benches sweep Fig 5's x-axis:
    given a desired epsilon, find the sigma to train with.
    """
    if target_epsilon <= 0:
        raise ValueError("target epsilon must be positive")
    if compute_epsilon(high, sampling_rate, num_steps, delta) > target_epsilon:
        raise ValueError("target epsilon unreachable even with maximum noise")
    for _ in range(60):
        mid = np.sqrt(low * high)  # geometric bisection over decades
        eps = compute_epsilon(mid, sampling_rate, num_steps, delta)
        if eps > target_epsilon:
            low = mid
        else:
            high = mid
    return float(high)
