"""Differential privacy substrate: RDP accounting, DP-SGD, and the
paper's §5 post-hoc privacy extensions."""

from .accountant import (
    RdpAccountant,
    compute_epsilon,
    noise_multiplier_for_epsilon,
)
from .dpsgd import DpGradientComputer, DpSgdConfig, privatize_gradients
from .extensions import retrain_attribute, transform_ips
from .membership import MembershipAttackResult, membership_inference_attack

__all__ = [
    "RdpAccountant", "compute_epsilon", "noise_multiplier_for_epsilon",
    "DpSgdConfig", "DpGradientComputer", "privatize_gradients",
    "transform_ips", "retrain_attribute",
    "MembershipAttackResult", "membership_inference_attack",
]
