"""DP-SGD gradient privatisation (Abadi et al. 2016).

NetShare's strawman DP training runs DP-SGD end-to-end; its Insight 4
runs DP-SGD only during fine-tuning from a public pretrained model.
Either way the per-step mechanism is the same: clip each *per-example*
gradient to L2 norm C, sum, add N(0, (C*sigma)^2) noise, and average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..nn.autograd import Tensor, grad
from ..nn.layers import Parameter
from ..nn.optim import clip_global_norm
from ..nn.tape import RECORDER as _REC, fresh_zeros, ka as _ka, taped_draw
from ..telemetry import emit_event
from ..telemetry.state import STATE as _TELEMETRY
from .accountant import RdpAccountant

__all__ = ["DpSgdConfig", "privatize_gradients", "DpGradientComputer"]


@dataclass
class DpSgdConfig:
    """DP-SGD hyperparameters."""

    clip_norm: float = 1.0
    noise_multiplier: float = 1.0
    delta: float = 1e-5

    def __post_init__(self):
        if self.clip_norm <= 0:
            raise ValueError("clip norm must be positive")
        if self.noise_multiplier < 0:
            raise ValueError("noise multiplier must be non-negative")


def privatize_gradients(
    per_example_grads: Sequence[Sequence[np.ndarray]],
    config: DpSgdConfig,
    rng: np.random.Generator,
) -> List[np.ndarray]:
    """Clip each example's gradient list, sum, add noise, average.

    ``per_example_grads[i][p]`` is example i's gradient for parameter p.

    Vectorized over the batch: gradients are stacked per parameter so
    the per-example norms, clip factors, and totals come from whole-
    batch numpy kernels instead of a Python loop per example.  Every
    reduction runs in the same element order as the per-example loop
    (see :func:`_privatize_gradients_loop`), so the output is
    bit-identical to the reference implementation.  All kernels and the
    noise draw go through the tape shims so a recorded DP step replays
    exactly (the noise is re-drawn from the live generator in stream
    order).
    """
    if not per_example_grads:
        raise ValueError("need at least one example")
    n = len(per_example_grads)
    stacked = [
        _ka(np.stack,
            [np.asarray(example[p]) for example in per_example_grads])
        for p in range(len(per_example_grads[0]))
    ]
    # Per-example global L2 norms, accumulated across parameters in the
    # same order clip_global_norm sums them.
    sq_norms = fresh_zeros(n)
    for block in stacked:
        sq = _ka(np.multiply, block, block)
        part = _ka(np.sum, sq.reshape(n, -1), axis=1)
        np.add(sq_norms, part, out=sq_norms)
        if _REC.active:
            _REC.k(np.add, (sq_norms, part), sq_norms)
    norms = _ka(np.sqrt, sq_norms)
    # Branchless clip factor: clip / max(norm, clip).  Bit-identical to
    # the masked form — norms above the clip divide exactly the same,
    # and clip / clip == 1.0 exactly otherwise.
    factors = _ka(np.divide, config.clip_norm,
                  _ka(np.maximum, norms, config.clip_norm))
    scale = config.noise_multiplier * config.clip_norm
    noisy = []
    for block in stacked:
        shaped = factors.reshape((n,) + (1,) * (block.ndim - 1))
        prod = _ka(np.multiply, block, shaped)
        total = _ka(np.add.reduce, prod, axis=0)
        noise = taped_draw(
            lambda shape=total.shape: rng.normal(0.0, scale, size=shape))
        noisy.append(_ka(np.divide, _ka(np.add, total, noise), n))
    return noisy


def _privatize_gradients_loop(
    per_example_grads: Sequence[Sequence[np.ndarray]],
    config: DpSgdConfig,
    rng: np.random.Generator,
) -> List[np.ndarray]:
    """Reference per-example implementation of
    :func:`privatize_gradients`; kept as the regression-test oracle for
    the vectorized kernel."""
    if not per_example_grads:
        raise ValueError("need at least one example")
    n = len(per_example_grads)
    totals = [np.zeros_like(g) for g in per_example_grads[0]]
    for example in per_example_grads:
        clipped = clip_global_norm(list(example), config.clip_norm)
        for total, g in zip(totals, clipped):
            total += g
    scale = config.noise_multiplier * config.clip_norm
    noisy = [
        (total + rng.normal(0.0, scale, size=total.shape)) / n
        for total in totals
    ]
    return noisy


class DpGradientComputer:
    """Computes privatized gradients for a per-example loss function.

    ``loss_fn(index)`` must return the scalar loss Tensor of training
    example ``index``.  Microbatching (looping over examples) is the
    per-example-gradient strategy — slow but exact, and fine at the
    scale this repo trains at.  The accountant tracks cumulative
    (epsilon, delta) as steps are taken.
    """

    def __init__(self, params: Sequence[Parameter], config: DpSgdConfig,
                 dataset_size: int, seed: int = 0):
        if dataset_size < 1:
            raise ValueError("dataset size must be positive")
        self.params = list(params)
        self.config = config
        self.dataset_size = dataset_size
        self.rng = np.random.default_rng(seed)
        self.accountant = RdpAccountant()
        self.steps_taken = 0

    def step_gradients(
        self, loss_fn: Callable[[int], Tensor], batch_indices: Sequence[int]
    ) -> List[np.ndarray]:
        """Return noisy averaged gradients for one DP-SGD step."""
        batch_indices = list(batch_indices)
        if not batch_indices:
            raise ValueError("batch must be non-empty")
        per_example = []
        for index in batch_indices:
            loss = loss_fn(index)
            grads = grad(loss, self.params)
            per_example.append([g.data for g in grads])
        noisy = privatize_gradients(per_example, self.config, self.rng)
        if self.config.noise_multiplier > 0:
            self.accountant.step(
                self.config.noise_multiplier,
                sampling_rate=len(batch_indices) / self.dataset_size,
            )
        self.steps_taken += 1
        if _TELEMETRY.enabled:
            # Per-step ε ledger: cumulative privacy spend after this
            # step (get_epsilon over the running RDP curve is cheap
            # relative to the per-example gradient loop above).
            _TELEMETRY.registry.counter("dp.steps").inc()
            emit_event("dp_step", step=self.steps_taken,
                       batch=len(batch_indices),
                       epsilon=self.spent_epsilon())
        return noisy

    def spent_epsilon(self) -> float:
        """(epsilon, delta)-DP spent so far."""
        if self.steps_taken == 0 or self.config.noise_multiplier == 0:
            return float("inf") if self.config.noise_multiplier == 0 else 0.0
        return self.accountant.get_epsilon(self.config.delta)
