"""Distance-based membership inference attack (LOGAN-style).

The paper's ethics discussion warns that "generative models can
memorize and leak individual records" (citing LOGAN, [32]); DP
training is NetShare's mitigation.  This module implements the
standard black-box distance attack used to *evaluate* that leakage:

given synthetic data, score a candidate record by its distance to the
nearest synthetic record; members (training records) of a memorizing
model score closer than non-members.  The attack's AUC is ~0.5 for a
non-leaking model and approaches 1.0 for a memorizing one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics.overfitting import _record_matrix

__all__ = ["MembershipAttackResult", "membership_inference_attack"]


@dataclass
class MembershipAttackResult:
    """Attack performance: AUC of member-vs-non-member separation."""

    auc: float
    member_mean_distance: float
    non_member_mean_distance: float

    @property
    def leaks(self) -> bool:
        """Rule-of-thumb flag: AUC above 0.6 indicates leakage."""
        return self.auc > 0.6


def _auc(member_scores: np.ndarray, non_member_scores: np.ndarray) -> float:
    """AUC of 'smaller score = member' via the rank-sum statistic."""
    scores = np.concatenate([member_scores, non_member_scores])
    labels = np.concatenate([
        np.ones(len(member_scores)), np.zeros(len(non_member_scores))
    ])
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores))
    ranks[order] = np.arange(1, len(scores) + 1)
    # Average ranks for ties.
    sorted_scores = scores[order]
    i = 0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i:j + 1]] = (i + j + 2) / 2.0
        i = j + 1
    n_pos, n_neg = labels.sum(), len(labels) - labels.sum()
    rank_sum = ranks[labels == 1].sum()
    # Members should have *small* distances: low ranks => high AUC.
    u = rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(1.0 - u / (n_pos * n_neg))


def membership_inference_attack(
    members, non_members, synthetic, max_records: int = 1000
) -> MembershipAttackResult:
    """Run the distance attack.

    ``members`` must be records the synthesizer was trained on;
    ``non_members`` records from the same distribution that were not.
    """
    from scipy.spatial import cKDTree

    member_m = _record_matrix(members)[:max_records]
    non_member_m = _record_matrix(non_members)[:max_records]
    syn_m = _record_matrix(synthetic)

    stacked = np.vstack([member_m, non_member_m, syn_m])
    lo, hi = stacked.min(axis=0), stacked.max(axis=0)
    span = np.where(hi - lo == 0, 1.0, hi - lo)

    tree = cKDTree((syn_m - lo) / span)
    member_d, _ = tree.query((member_m - lo) / span)
    non_member_d, _ = tree.query((non_member_m - lo) / span)

    return MembershipAttackResult(
        auc=_auc(member_d, non_member_d),
        member_mean_distance=float(member_d.mean()),
        non_member_mean_distance=float(non_member_d.mean()),
    )
