"""IP2Vec: word2vec-style embeddings of header-field values (Ring et
al. 2017), used by NetShare for ports and protocols (Insight 2).

As in Word2Vec, each five-tuple indexes a "sentence" whose words are
its field values; skip-gram with negative sampling learns a vector per
word, and generated vectors are decoded by nearest-neighbour search
over the dictionary.

Privacy nuance reproduced from the paper: the dictionary is training-
data-dependent, so NetShare trains IP2Vec on *public* data (a CAIDA
Chicago trace), embedding only ports and protocols (whose vocabulary a
public trace covers almost completely), while IPs use bit encoding.
The E-WGAN-GP baseline instead embeds *every* field on the private
data, which Table 2 flags as not privacy-safe.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["IP2Vec", "five_tuple_sentences", "token"]


def token(kind: str, value) -> str:
    """Namespace a field value, e.g. token('dp', 80) -> 'dp:80'."""
    return f"{kind}:{int(value)}"


def five_tuple_sentences(trace, include_ips: bool = False) -> List[List[str]]:
    """One sentence per record: its five-tuple's words.

    Ports are namespaced by direction and protocol gets its own kind, so
    'dp:53' and 'sp:53' are distinct words (as in the original IP2Vec).
    """
    sentences = []
    for i in range(len(trace)):
        words = [
            token("sp", trace.src_port[i]),
            token("dp", trace.dst_port[i]),
            token("pr", trace.protocol[i]),
        ]
        if include_ips:
            words = [
                token("sa", trace.src_ip[i]),
                token("da", trace.dst_ip[i]),
            ] + words
        sentences.append(words)
    return sentences


class IP2Vec:
    """Skip-gram with negative sampling over header-value sentences."""

    def __init__(self, dim: int = 12, negative: int = 5, epochs: int = 3,
                 lr: float = 0.05, seed: int = 0):
        if dim < 1:
            raise ValueError("embedding dimension must be positive")
        if negative < 1:
            raise ValueError("need at least one negative sample")
        self.dim = dim
        self.negative = negative
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self.vocab: Dict[str, int] = {}
        self.inverse_vocab: List[str] = []
        self.vectors: Optional[np.ndarray] = None       # input embeddings
        self._context: Optional[np.ndarray] = None      # output embeddings

    # ------------------------------------------------------------------
    def fit(self, sentences: Sequence[Sequence[str]]) -> "IP2Vec":
        """Train embeddings on token sentences."""
        if not sentences:
            raise ValueError("no sentences to train on")
        rng = np.random.default_rng(self.seed)
        self.vocab = {}
        counts: List[int] = []
        pairs: List[Tuple[int, int]] = []
        for sentence in sentences:
            ids = []
            for word in sentence:
                idx = self.vocab.get(word)
                if idx is None:
                    idx = len(self.vocab)
                    self.vocab[word] = idx
                    counts.append(0)
                counts[idx] += 1
                ids.append(idx)
            # Full-sentence context window (sentences are 3-5 words).
            for i, center in enumerate(ids):
                for j, context in enumerate(ids):
                    if i != j:
                        pairs.append((center, context))
        self.inverse_vocab = [None] * len(self.vocab)
        for word, idx in self.vocab.items():
            self.inverse_vocab[idx] = word
        self.counts = np.array(counts, dtype=np.int64)

        v = len(self.vocab)
        self.vectors = rng.normal(0.0, 0.5 / self.dim, size=(v, self.dim))
        self._context = np.zeros((v, self.dim))

        # Unigram^(3/4) negative-sampling distribution, as in word2vec.
        freq = np.array(counts, dtype=np.float64) ** 0.75
        neg_probs = freq / freq.sum()

        pair_arr = np.array(pairs, dtype=np.int64)
        for _ in range(self.epochs):
            order = rng.permutation(len(pair_arr))
            for idx in order:
                center, context = pair_arr[idx]
                negatives = rng.choice(v, size=self.negative, p=neg_probs)
                self._sgd_step(center, context, negatives)
        return self

    def _sgd_step(self, center: int, context: int, negatives: np.ndarray):
        v_c = self.vectors[center]
        targets = np.concatenate([[context], negatives])
        labels = np.zeros(len(targets))
        labels[0] = 1.0
        outs = self._context[targets]            # (k, dim)
        scores = outs @ v_c                      # (k,)
        preds = 1.0 / (1.0 + np.exp(-np.clip(scores, -30, 30)))
        errors = (preds - labels)[:, None]       # (k, 1)
        grad_center = (errors * outs).sum(axis=0)
        self._context[targets] -= self.lr * errors * v_c[None, :]
        self.vectors[center] -= self.lr * grad_center

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Fitted state as arrays + JSON-able values (for .npz saves)."""
        self._check_fitted()
        return {
            "dim": self.dim,
            "negative": self.negative,
            "epochs": self.epochs,
            "lr": self.lr,
            "seed": self.seed,
            "vocab": list(self.inverse_vocab),   # words in index order
            "vectors": self.vectors.copy(),
            "context": self._context.copy(),
            "counts": self.counts.copy(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "IP2Vec":
        """Rebuild a fitted IP2Vec from :meth:`state_dict` output."""
        model = cls(dim=int(state["dim"]), negative=int(state["negative"]),
                    epochs=int(state["epochs"]), lr=float(state["lr"]),
                    seed=int(state["seed"]))
        words = [str(w) for w in state["vocab"]]
        model.vocab = {word: i for i, word in enumerate(words)}
        model.inverse_vocab = words
        model.vectors = np.asarray(state["vectors"], dtype=np.float64)
        model._context = np.asarray(state["context"], dtype=np.float64)
        model.counts = np.asarray(state["counts"], dtype=np.int64)
        return model

    # ------------------------------------------------------------------
    def _check_fitted(self):
        if self.vectors is None:
            raise RuntimeError("IP2Vec is not fitted; call fit() first")

    def __contains__(self, word: str) -> bool:
        return word in self.vocab

    def vector(self, word: str) -> np.ndarray:
        self._check_fitted()
        idx = self.vocab.get(word)
        if idx is None:
            raise KeyError(f"word {word!r} not in the IP2Vec dictionary")
        return self.vectors[idx]

    def _kind_values(self, kind: str):
        """Sorted (values, vocab indices) of one namespace, cached."""
        cache = getattr(self, "_kind_cache", None)
        if cache is None:
            cache = {}
            self._kind_cache = cache
        if kind not in cache:
            pairs = sorted(
                (int(w.split(":", 1)[1]), i)
                for w, i in self.vocab.items() if w.startswith(kind + ":")
            )
            values = np.array([p[0] for p in pairs], dtype=np.int64)
            indices = np.array([p[1] for p in pairs], dtype=np.int64)
            cache[kind] = (values, indices)
        return cache[kind]

    def encode_many(self, words: Iterable[str],
                    default_kind: Optional[str] = None) -> np.ndarray:
        """Stack vectors for words.

        A word missing from the (public) dictionary is represented by
        the *numerically nearest* known value of its kind — e.g. an
        unseen private port 4444 borrows the vector of the closest
        public port.  This mirrors how a fixed public dictionary can
        still cover rare private values (Insight 2) while keeping the
        round trip within the value's histogram neighbourhood.
        """
        self._check_fitted()
        rows = []
        for word in words:
            idx = self.vocab.get(word)
            if idx is not None:
                rows.append(self.vectors[idx])
                continue
            kind, _, raw = word.partition(":")
            values, indices = self._kind_values(kind)
            if len(values) == 0:
                rows.append(np.zeros(self.dim))
                continue
            target = int(raw)
            pos = np.searchsorted(values, target)
            candidates = [p for p in (pos - 1, pos) if 0 <= p < len(values)]
            nearest = min(candidates, key=lambda p: abs(int(values[p]) - target))
            rows.append(self.vectors[indices[nearest]])
        return np.array(rows)

    def decode_many(self, vectors: np.ndarray, kind: str) -> List[str]:
        """Nearest-neighbour decode restricted to one namespace."""
        self._check_fitted()
        candidates = [
            (w, i) for w, i in self.vocab.items() if w.startswith(kind + ":")
        ]
        if not candidates:
            raise KeyError(f"no words of kind {kind!r} in the dictionary")
        words = [w for w, _ in candidates]
        matrix = self.vectors[[i for _, i in candidates]]  # (k, dim)
        vectors = np.asarray(vectors, dtype=np.float64)
        # Squared euclidean nearest neighbour.
        d2 = (
            (vectors**2).sum(axis=1)[:, None]
            - 2.0 * vectors @ matrix.T
            + (matrix**2).sum(axis=1)[None, :]
        )
        nearest = d2.argmin(axis=1)
        return [words[i] for i in nearest]

    def decode_values(self, vectors: np.ndarray, kind: str) -> np.ndarray:
        """Decode to integer field values (strips the namespace)."""
        words = self.decode_many(vectors, kind)
        return np.array([int(w.split(":", 1)[1]) for w in words], dtype=np.int64)

    def vocabulary_of_kind(self, kind: str) -> List[int]:
        """All known values of one namespace, sorted."""
        return sorted(
            int(w.split(":", 1)[1]) for w in self.vocab if w.startswith(kind + ":")
        )

    def anchor_vectors(self, kind: str, max_anchors: int = 48,
                       seed: int = 0) -> np.ndarray:
        """Representative dictionary vectors for one namespace.

        Returns up to ``max_anchors`` vectors: the most frequent tokens
        (covering the heavy service-port modes) plus a random sample of
        the remainder (covering the ephemeral cloud).  These serve as
        the fixed anchor set for the GAN's structured metadata head.
        """
        vectors, _ = self.anchor_set(kind, max_anchors=max_anchors, seed=seed)
        return vectors

    def anchor_set(self, kind: str, max_anchors: int = 48,
                   seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        """Anchor vectors plus their public-data frequencies.

        The frequencies serve as a categorical prior for the GAN's
        anchor head: the generator starts from the public token
        distribution (an Insight-4-style use of public data) and the
        adversarial training shifts it toward the private one.
        """
        self._check_fitted()
        members = [(w, i) for w, i in self.vocab.items()
                   if w.startswith(kind + ":")]
        if not members:
            raise KeyError(f"no words of kind {kind!r} in the dictionary")
        indices = np.array([i for _, i in members])
        freq = self.counts[indices]
        order = np.argsort(-freq)
        if len(indices) <= max_anchors:
            chosen = indices[order]
        else:
            n_top = max_anchors // 2
            top = indices[order[:n_top]]
            rest = indices[order[n_top:]]
            rng = np.random.default_rng(seed)
            sampled = rng.choice(rest, size=max_anchors - n_top, replace=False)
            # Sampled tail anchors each *represent* many unsampled
            # tokens; spread the unsampled mass across them.
            chosen = np.concatenate([top, sampled])
        counts = self.counts[chosen].astype(np.float64)
        if len(indices) > max_anchors:
            n_top = max_anchors // 2
            total_tail = float(self.counts[indices].sum()
                               - self.counts[indices[order[:n_top]]].sum())
            counts[n_top:] = total_tail / (max_anchors - n_top)
        return self.vectors[chosen].copy(), counts
