"""Flow tensor encoder: FlowSeries <-> (metadata, measurements, flags).

This is where Insights 1 and 2 meet the GAN: each flow becomes one
training sample whose *metadata* is its encoded five-tuple (+ flow
tags) and whose *measurement* is the time series of its records.

Metadata layout (NetShare defaults):

* src/dst IP — 32-bit binary encoding each (DP-compatible),
* src/dst port — IP2Vec embedding (trained on public data) or 16-bit
  binary for the ablation,
* protocol — IP2Vec embedding or one-hot,
* flow tags — 1 'starts here' flag + M presence bits (when chunked).

Measurement layout per timestep:

* NetFlow: relative start time in the chunk window, log-min-max
  duration, packets, bytes, label one-hot, attack-type one-hot;
* PCAP: relative timestamp, min-max packet size, min-max TTL.

``gen_flags`` marks which timesteps are real (DoppelGANger's
generation flags); flows longer than ``max_timesteps`` are truncated,
matching DoppelGANger's bounded sequence length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.records import ATTACK_TYPES, FlowTrace, PacketTrace
from .encodings import (
    BitEncoder,
    LogMinMaxEncoder,
    MinMaxEncoder,
    OneHotEncoder,
    QuantileEncoder,
)
from .ip2vec import IP2Vec, token
from .preprocess import FlowSeries

__all__ = ["EncodedFlows", "FlowTensorEncoder"]

_PROTOCOLS = (1, 6, 17)


@dataclass
class EncodedFlows:
    """GAN-ready tensors for one chunk of flows."""

    metadata: np.ndarray      # (n, d_meta)
    measurements: np.ndarray  # (n, T, d_meas)
    gen_flags: np.ndarray     # (n, T), 1.0 = real timestep

    def __len__(self) -> int:
        return len(self.metadata)


class FlowTensorEncoder:
    """Encode/decode chunks of flows for the time-series GAN."""

    def __init__(
        self,
        kind: str,
        max_timesteps: int = 8,
        ip_encoding: str = "bit",
        port_encoding: str = "ip2vec",
        ip2vec: Optional[IP2Vec] = None,
        n_chunks: int = 1,
        numeric_encoding: str = "quantile",
    ):
        if kind not in ("netflow", "pcap"):
            raise ValueError(f"unknown trace kind {kind!r}")
        if ip_encoding not in ("bit",):
            raise ValueError("NetShare uses bit encoding for IPs (Table 2)")
        if port_encoding not in ("ip2vec", "bit"):
            raise ValueError("port encoding must be 'ip2vec' or 'bit'")
        if port_encoding == "ip2vec" and ip2vec is None:
            raise ValueError("ip2vec encoder required for ip2vec ports")
        if max_timesteps < 1:
            raise ValueError("max_timesteps must be positive")
        self.kind = kind
        self.max_timesteps = max_timesteps
        self.ip_encoding = ip_encoding
        self.port_encoding = port_encoding
        self.ip2vec = ip2vec
        self.n_chunks = max(1, n_chunks)

        # The GAN's metadata output is sigmoid-bounded to [0, 1], so
        # IP2Vec embeddings (arbitrary scale) are min-max normalised
        # per dimension over the dictionary; decode un-scales first.
        if port_encoding == "ip2vec":
            vectors = ip2vec.vectors
            self._emb_lo = vectors.min(axis=0)
            span = vectors.max(axis=0) - self._emb_lo
            span[span == 0] = 1.0
            self._emb_span = span

        self._ip_bits = BitEncoder(32)
        self._port_bits = BitEncoder(16)
        self._proto_onehot = OneHotEncoder(_PROTOCOLS)
        # Insight 2: tame large-support numeric fields.  'quantile'
        # (default) uses the empirical CDF computed on log1p values;
        # 'log' is the paper's plain log(1+x) min-max; 'linear' is the
        # no-transform ablation.
        encoders = {
            "quantile": lambda: QuantileEncoder(log_space=True),
            "log": LogMinMaxEncoder,
            "linear": MinMaxEncoder,
        }
        if numeric_encoding not in encoders:
            raise ValueError(
                f"numeric_encoding must be one of {sorted(encoders)}")
        self.numeric_encoding = numeric_encoding
        numeric_encoder = encoders[numeric_encoding]
        if kind == "netflow":
            self._duration = numeric_encoder()
            self._packets = numeric_encoder()
            self._bytes = numeric_encoder()
            self._label = OneHotEncoder([0, 1])
            self._attack = OneHotEncoder(sorted(ATTACK_TYPES))
        else:
            self._size = (QuantileEncoder(log_space=False)
                          if numeric_encoding == "quantile"
                          else MinMaxEncoder())
            self._ttl = MinMaxEncoder()
            # PCAP flows can far exceed max_timesteps (elephants); the
            # flow's *total packet count* is carried in metadata and
            # the measurement series is a T-point sketch of the flow.
            self._flow_size = QuantileEncoder(log_space=True)
        self._fitted = False

    # ------------------------------------------------------------------
    @property
    def port_width(self) -> int:
        if self.port_encoding == "ip2vec":
            return self.ip2vec.dim
        return self._port_bits.width

    @property
    def proto_width(self) -> int:
        if self.port_encoding == "ip2vec":
            return self.ip2vec.dim
        return self._proto_onehot.width

    @property
    def metadata_width(self) -> int:
        tags = (1 + self.n_chunks) if self.n_chunks > 1 else 0
        flow_size = 1 if self.kind == "pcap" else 0
        return 64 + 2 * self.port_width + self.proto_width + flow_size + tags

    @property
    def measurement_width(self) -> int:
        if self.kind == "netflow":
            return 1 + 3 + self._label.width + self._attack.width
        return 3

    def metadata_segments(self, max_anchors: int = 48):
        """Structured layout of the metadata vector for the GAN.

        Returns a list of ``("sigmoid", width)`` and
        ``("anchor", matrix)`` segments.  Embedded (IP2Vec) fields get
        fixed anchor matrices — scaled dictionary vectors — so the
        generator can parameterise them as a Gumbel-softmax mixture
        over real dictionary points instead of free-form vectors,
        which is what makes the embedding fields trainable at small
        scale while keeping nearest-neighbour decoding unchanged.
        """
        segments = [("sigmoid", 32), ("sigmoid", 32)]
        if self.port_encoding == "ip2vec":
            for kind in ("sp", "dp", "pr"):
                vectors, counts = self.ip2vec.anchor_set(
                    kind, max_anchors=max_anchors)
                anchors = self._scale_emb(vectors)
                prior = np.log(counts + 1.0)
                segments.append(("anchor", anchors, prior - prior.mean()))
        else:
            segments.append(("sigmoid", 2 * self._port_bits.width))
            segments.append(("sigmoid", self._proto_onehot.width))
        if self.kind == "pcap":
            segments.append(("sigmoid", 1))  # flow packet count
        if self.n_chunks > 1:
            segments.append(("sigmoid", 1 + self.n_chunks))
        return segments

    # ------------------------------------------------------------------
    def fit(self, trace) -> "FlowTensorEncoder":
        """Fit the continuous-field scalers on the giant trace."""
        if self.kind == "netflow":
            if not isinstance(trace, FlowTrace):
                raise TypeError("netflow encoder requires a FlowTrace")
            self._duration.fit(trace.duration)
            self._packets.fit(trace.packets)
            self._bytes.fit(trace.bytes)
        else:
            if not isinstance(trace, PacketTrace):
                raise TypeError("pcap encoder requires a PacketTrace")
            self._size.fit(trace.packet_size)
            self._ttl.fit(trace.ttl)
            self._flow_size.fit(trace.flow_sizes())
        self._fitted = True
        return self

    def _check_fitted(self):
        if not self._fitted:
            raise RuntimeError("encoder is not fitted; call fit() first")

    # ------------------------------------------------------------------
    def _field_encoders(self):
        """Named sub-encoders that carry fitted state."""
        if self.kind == "netflow":
            return {"duration": self._duration, "packets": self._packets,
                    "bytes": self._bytes}
        return {"size": self._size, "ttl": self._ttl,
                "flow_size": self._flow_size}

    def state_dict(self) -> dict:
        """Full fitted state (construction args + per-field scalers)."""
        state = {
            "kind": self.kind,
            "max_timesteps": self.max_timesteps,
            "ip_encoding": self.ip_encoding,
            "port_encoding": self.port_encoding,
            "n_chunks": self.n_chunks,
            "numeric_encoding": self.numeric_encoding,
            "fitted": self._fitted,
            "fields": {name: enc.state_dict()
                       for name, enc in self._field_encoders().items()},
        }
        if self.port_encoding == "ip2vec":
            state["ip2vec"] = self.ip2vec.state_dict()
        return state

    @classmethod
    def from_state(cls, state: dict) -> "FlowTensorEncoder":
        """Rebuild a fitted encoder from :meth:`state_dict` output.

        The IP2Vec embedding scaling (``_emb_lo``/``_emb_span``) is
        recomputed by the constructor from the restored dictionary
        vectors, which round-trip bit-exactly through the state dict.
        """
        ip2vec = (IP2Vec.from_state(state["ip2vec"])
                  if "ip2vec" in state else None)
        encoder = cls(
            str(state["kind"]),
            max_timesteps=int(state["max_timesteps"]),
            ip_encoding=str(state["ip_encoding"]),
            port_encoding=str(state["port_encoding"]),
            ip2vec=ip2vec,
            n_chunks=int(state["n_chunks"]),
            numeric_encoding=str(state["numeric_encoding"]),
        )
        for name, enc in encoder._field_encoders().items():
            enc.load_state_dict(state["fields"][name])
        encoder._fitted = bool(state["fitted"])
        return encoder

    # ------------------------------------------------------------------
    def _encode_ports_protocol(self, flows: Sequence[FlowSeries]) -> np.ndarray:
        sp = np.array([f.key[2] for f in flows])
        dp = np.array([f.key[3] for f in flows])
        pr = np.array([f.key[4] for f in flows])
        if self.port_encoding == "ip2vec":
            sp_vec = self._scale_emb(self.ip2vec.encode_many(
                token("sp", p) for p in sp))
            dp_vec = self._scale_emb(self.ip2vec.encode_many(
                token("dp", p) for p in dp))
            pr_vec = self._scale_emb(self.ip2vec.encode_many(
                token("pr", p) for p in pr))
            return np.hstack([sp_vec, dp_vec, pr_vec])
        return np.hstack([
            self._port_bits.encode(sp),
            self._port_bits.encode(dp),
            self._proto_onehot.encode(pr),
        ])

    def encode_chunk(self, flows: Sequence[FlowSeries],
                     window: Tuple[float, float]) -> EncodedFlows:
        """Encode one chunk's flows; ``window`` is its (start, end) time."""
        self._check_fitted()
        if not flows:
            raise ValueError("cannot encode an empty chunk")
        lo, hi = window
        span = max(hi - lo, 1e-9)
        n, t_max = len(flows), self.max_timesteps

        src = np.array([f.key[0] for f in flows], dtype=np.uint64)
        dst = np.array([f.key[1] for f in flows], dtype=np.uint64)
        meta_parts = [
            self._ip_bits.encode(src),
            self._ip_bits.encode(dst),
            self._encode_ports_protocol(flows),
        ]
        if self.kind == "pcap":
            sizes = np.array([len(f.records) for f in flows], dtype=float)
            meta_parts.append(self._flow_size.encode(sizes))
        if self.n_chunks > 1:
            tags = np.zeros((n, 1 + self.n_chunks))
            for i, f in enumerate(flows):
                tags[i, 0] = 1.0 if f.starts_here else 0.0
                presence = (f.presence if f.presence is not None
                            else np.eye(self.n_chunks)[0])
                tags[i, 1:] = presence
            meta_parts.append(tags)
        metadata = np.hstack(meta_parts)

        measurements = np.zeros((n, t_max, self.measurement_width))
        gen_flags = np.zeros((n, t_max))
        for i, f in enumerate(flows):
            if self.kind == "pcap" and len(f.records) > t_max:
                # T-point sketch of an elephant flow: evenly-spaced
                # packets including the first and last.  The full count
                # lives in the metadata and decode re-expands it.
                picks = np.round(
                    np.linspace(0, len(f.records) - 1, t_max)
                ).astype(int)
                records = f.records[picks]
            else:
                records = f.records[:t_max]
            k = len(records)
            gen_flags[i, :k] = 1.0
            rel_time = np.clip((records[:, 0] - lo) / span, 0.0, 1.0)
            if self.kind == "netflow":
                measurements[i, :k, :] = np.hstack([
                    rel_time[:, None],
                    self._duration.encode(records[:, 1]),
                    self._packets.encode(records[:, 2]),
                    self._bytes.encode(records[:, 3]),
                    self._label.encode(records[:, 4].astype(np.int64)),
                    self._attack.encode(records[:, 5].astype(np.int64)),
                ])
            else:
                measurements[i, :k, :] = np.hstack([
                    rel_time[:, None],
                    self._size.encode(records[:, 1]),
                    self._ttl.encode(records[:, 2]),
                ])
        return EncodedFlows(metadata, measurements, gen_flags)

    # ------------------------------------------------------------------
    def _scale_emb(self, vectors: np.ndarray) -> np.ndarray:
        return np.clip((vectors - self._emb_lo) / self._emb_span, 0.0, 1.0)

    def _unscale_emb(self, scaled: np.ndarray) -> np.ndarray:
        return self._emb_lo + np.asarray(scaled) * self._emb_span

    def _decode_ports_protocol(self, block: np.ndarray):
        w = self.port_width
        if self.port_encoding == "ip2vec":
            sp = self.ip2vec.decode_values(self._unscale_emb(block[:, :w]), "sp")
            dp = self.ip2vec.decode_values(
                self._unscale_emb(block[:, w:2 * w]), "dp")
            pr = self.ip2vec.decode_values(
                self._unscale_emb(block[:, 2 * w:]), "pr")
        else:
            sp = self._port_bits.decode(block[:, :w]).astype(np.int64)
            dp = self._port_bits.decode(block[:, w:2 * w]).astype(np.int64)
            pr = self._proto_onehot.decode(block[:, 2 * w:])
        return sp, dp, pr

    def decode(self, encoded: EncodedFlows,
               window: Tuple[float, float],
               rng: Optional[np.random.Generator] = None):
        """Decode generated tensors back into a trace (one chunk).

        For PCAP data the metadata's flow-size feature re-expands each
        flow to its full packet count: timestamps are interpolated
        between the T sketch points and sizes/TTLs are bootstrapped
        from them (``rng`` drives the bootstrap; default seed 0).
        """
        self._check_fitted()
        rng = rng if rng is not None else np.random.default_rng(0)
        lo, hi = window
        span = max(hi - lo, 1e-9)
        meta = encoded.metadata
        src = self._ip_bits.decode(meta[:, :32]).astype(np.uint32)
        dst = self._ip_bits.decode(meta[:, 32:64]).astype(np.uint32)
        pp_width = 2 * self.port_width + self.proto_width
        sp, dp, pr = self._decode_ports_protocol(meta[:, 64:64 + pp_width])
        if self.kind == "pcap":
            fs_col = 64 + pp_width
            flow_sizes = np.maximum(np.round(self._flow_size.decode(
                meta[:, fs_col:fs_col + 1])), 1).astype(np.int64)

        columns = {}
        if self.kind == "netflow":
            names = ("src_ip", "dst_ip", "src_port", "dst_port", "protocol",
                     "start_time", "duration", "packets", "bytes",
                     "label", "attack_type")
        else:
            names = ("timestamp", "src_ip", "dst_ip", "src_port", "dst_port",
                     "protocol", "packet_size", "ttl")
        for name in names:
            columns[name] = []

        for i in range(len(encoded)):
            active = np.nonzero(encoded.gen_flags[i] > 0.5)[0]
            if len(active) == 0:
                continue
            m = encoded.measurements[i, active, :]
            times = lo + np.sort(np.clip(m[:, 0], 0.0, 1.0)) * span
            k = len(active)
            if self.kind == "netflow":
                columns["src_ip"].append(np.full(k, src[i], dtype=np.uint32))
                columns["dst_ip"].append(np.full(k, dst[i], dtype=np.uint32))
                columns["src_port"].append(np.full(k, sp[i]))
                columns["dst_port"].append(np.full(k, dp[i]))
                columns["protocol"].append(np.full(k, pr[i]))
                columns["start_time"].append(times)
                columns["duration"].append(
                    np.maximum(self._duration.decode(m[:, 1:2]), 0.0))
                columns["packets"].append(np.maximum(
                    np.round(self._packets.decode(m[:, 2:3])), 1).astype(np.int64))
                columns["bytes"].append(np.maximum(
                    np.round(self._bytes.decode(m[:, 3:4])), 1).astype(np.int64))
                lbl_w = self._label.width
                columns["label"].append(
                    self._label.decode(m[:, 4:4 + lbl_w]))
                columns["attack_type"].append(
                    self._attack.decode(m[:, 4 + lbl_w:]))
            else:
                sizes = np.maximum(
                    np.round(self._size.decode(m[:, 1:2])), 20).astype(np.int64)
                ttls = np.clip(
                    np.round(self._ttl.decode(m[:, 2:3])), 1, 255
                ).astype(np.int64)
                total = int(flow_sizes[i])
                if total > k:
                    # Re-expand the T-point sketch to the flow's full
                    # packet count: interpolate timestamps between
                    # sketch points, bootstrap sizes/TTLs from them.
                    grid = np.linspace(0.0, 1.0, total)
                    anchor = (np.linspace(0.0, 1.0, k) if k > 1
                              else np.array([0.0]))
                    times = np.interp(grid, anchor, times)
                    sizes = rng.choice(sizes, size=total)
                    ttls = rng.choice(ttls, size=total)
                    k = total
                elif total < k:
                    # The generator emitted more sketch points than the
                    # flow-size feature indicates; keep the first ones.
                    times, sizes, ttls = times[:total], sizes[:total], ttls[:total]
                    k = total
                columns["timestamp"].append(times)
                columns["src_ip"].append(np.full(k, src[i], dtype=np.uint32))
                columns["dst_ip"].append(np.full(k, dst[i], dtype=np.uint32))
                columns["src_port"].append(np.full(k, sp[i]))
                columns["dst_port"].append(np.full(k, dp[i]))
                columns["protocol"].append(np.full(k, pr[i]))
                columns["packet_size"].append(sizes)
                columns["ttl"].append(ttls)

        if not columns[names[0]]:
            raise ValueError("generated tensors decode to an empty trace")
        arrays = {k: np.concatenate(v) for k, v in columns.items()}
        if self.kind == "netflow":
            return FlowTrace(**arrays).sort_by_time()
        return PacketTrace(**arrays).sort_by_time()
