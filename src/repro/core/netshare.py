"""NetShare: the end-to-end synthetic header trace generator (Fig 9).

Pipeline, combining the paper's four insights:

1. **Pre-processing** (I1/I2): merge epochs into the giant trace,
   split into five-tuple flows, encode fields (IP bits, IP2Vec ports
   and protocols trained on *public* data, log transforms).
2. **Training** (I1/I3/I4): slice flows into M fixed-time chunks with
   flow tags; train the time-series GAN on the first chunk ("seed"),
   then fine-tune per-chunk copies from the seed model — enabling
   parallel training while preserving cross-chunk correlations via the
   tags.  With DP enabled, pre-train on a public trace and fine-tune
   on private data with DP-SGD.  Chunk training runs on the
   :mod:`repro.runtime` executor layer: the seed chunk trains first,
   the remaining chunks fan out as stateless tasks across the
   configured backend (``config.jobs`` / ``REPRO_JOBS``), and results
   are bit-identical across backends because every task derives its
   RNG from ``config.seed + chunk_index``.
3. **Post-processing**: decode embeddings (nearest neighbour),
   generate derived fields (checksums), and merge records by raw
   timestamp / flow start time.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.records import FlowTrace, PacketTrace
from ..datasets.profiles import load_dataset
from ..gan.doppelganger import DgConfig, DoppelGANger, TrainingLog
from ..nn import bucket_size
from ..privacy.accountant import RdpAccountant
from ..privacy.dpsgd import DpSgdConfig
from ..runtime import get_executor
from ..runtime.chunk_tasks import (
    ChunkResult,
    ChunkTask,
    GenerateTask,
    freeze_state,
    generate_chunk,
    train_chunk,
)
from ..runtime.serialization import load_state_npz, save_state_npz
from ..runtime.shm import maybe_arena
from ..telemetry import emit_event
from ..telemetry.spans import span
from ..telemetry.state import STATE as _TELEMETRY
from .flow_encoder import FlowTensorEncoder
from .ip2vec import IP2Vec, five_tuple_sentences
from .preprocess import chunk_flows, split_into_flows, time_range
from .postprocess import finalize_flow_trace, finalize_packet_trace

__all__ = ["NetShareConfig", "NetShare", "GenerateSession"]


@dataclass
class NetShareConfig:
    """End-to-end configuration.

    ``n_chunks=1`` with ``fine_tune_chunks=False`` reproduces
    'NetShare-V0' from Fig 4 — the merged time-series formulation
    without the scalability optimisation.
    """

    n_chunks: int = 5
    max_timesteps: int = 8
    port_encoding: str = "ip2vec"       # or "bit" (ablation)
    ip2vec_dim: int = 8
    ip2vec_public_dataset: str = "caida_chicago_2015"
    ip2vec_public_records: int = 1500
    epochs_seed: int = 30
    epochs_fine_tune: int = 10
    fine_tune_chunks: bool = True
    numeric_encoding: str = "quantile"  # "log"/"linear" for ablation
    batch_size: int = 32
    anchor_count: int = 96
    noise_dim: int = 12
    rnn_hidden: int = 48
    seed: int = 0
    # Training parallelism: worker count for the repro.runtime executor
    # (None = REPRO_JOBS env var, then 1 = serial; 0 = one per CPU).
    jobs: Optional[int] = None
    # Executor backend: None (pick serial/multiprocessing from jobs),
    # 'serial', 'multiprocessing', 'shm' (zero-copy shared-memory
    # dispatch), or 'remote' (multi-host socket fan-out); None also
    # falls back to the REPRO_BACKEND env var.
    backend: Optional[str] = None
    # Worker hosts for the remote backend ('host:port,host:port'; None
    # falls back to REPRO_HOSTS).  Setting hosts without a backend
    # selects 'remote'.
    hosts: Optional[str] = None
    # Differential privacy (Insight 4); None disables DP.
    dp: Optional[DpSgdConfig] = None
    dp_public_dataset: Optional[str] = None
    dp_public_records: int = 1000
    dp_public_epochs: int = 20

    def __post_init__(self):
        if self.n_chunks < 1:
            raise ValueError("need at least one chunk")
        if self.epochs_seed < 1 or self.epochs_fine_tune < 0:
            raise ValueError("invalid epoch counts")


@dataclass
class _TrainedChunk:
    index: int                    # position in the M-chunk time grid
    model: DoppelGANger
    window: Tuple[float, float]
    n_flows: int
    n_records: int


class NetShare:
    """Fit on a header trace; generate synthetic traces of the same kind."""

    def __init__(self, config: Optional[NetShareConfig] = None):
        self.config = config or NetShareConfig()
        self._encoder: Optional[FlowTensorEncoder] = None
        self._chunks: List[_TrainedChunk] = []
        self._kind: Optional[str] = None
        self.cpu_seconds: float = 0.0       # summed per-task training time
        self.wall_seconds: float = 0.0      # measured training wall-clock
        self.backend: Optional[str] = None  # executor backend used by fit
        self.spent_epsilon: Optional[float] = None
        # Dispatch payload stats (populated only while the
        # REPRO_MEASURE_DISPATCH env var is set — see the perf bench).
        self.dispatch_bytes: Optional[int] = None
        self.dispatch_tasks: int = 0
        self.generate_dispatch_bytes: Optional[int] = None
        self.generate_wall_seconds: float = 0.0

    @property
    def kind(self) -> Optional[str]:
        """'netflow' or 'pcap' once fitted (or loaded), else None."""
        return self._kind

    # ------------------------------------------------------------------
    def _build_ip2vec(self) -> Optional[IP2Vec]:
        if self.config.port_encoding != "ip2vec":
            return None
        public = load_dataset(
            self.config.ip2vec_public_dataset,
            n_records=self.config.ip2vec_public_records,
            seed=self.config.seed + 7,
        )
        model = IP2Vec(dim=self.config.ip2vec_dim, epochs=2,
                       seed=self.config.seed)
        return model.fit(five_tuple_sentences(public))

    def _gan_config(self, encoder: FlowTensorEncoder) -> DgConfig:
        return DgConfig(
            metadata_dim=encoder.metadata_width,
            measurement_dim=encoder.measurement_width,
            max_timesteps=self.config.max_timesteps,
            noise_dim=self.config.noise_dim,
            rnn_hidden=self.config.rnn_hidden,
            batch_size=self.config.batch_size,
            metadata_segments=encoder.metadata_segments(
                max_anchors=self.config.anchor_count),
        )

    def _make_encoder(self, trace) -> FlowTensorEncoder:
        kind = "netflow" if isinstance(trace, FlowTrace) else "pcap"
        encoder = FlowTensorEncoder(
            kind,
            max_timesteps=self.config.max_timesteps,
            port_encoding=self.config.port_encoding,
            ip2vec=self._build_ip2vec(),
            n_chunks=self.config.n_chunks,
            numeric_encoding=self.config.numeric_encoding,
        )
        return encoder.fit(trace)

    def _chunk_windows(self, trace) -> List[Tuple[float, float]]:
        lo, hi = time_range(trace)
        edges = np.linspace(lo, hi, self.config.n_chunks + 1)
        return [(float(edges[i]), float(edges[i + 1]))
                for i in range(self.config.n_chunks)]

    # ------------------------------------------------------------------
    def fit(self, trace) -> "NetShare":
        """Train on a FlowTrace or PacketTrace.

        Chunk training is dispatched through the :mod:`repro.runtime`
        executor (Insight 3's parallelism made real): the seed chunk
        trains first in-process, then the remaining chunks fan out as
        :class:`ChunkTask` work items.  ``wall_seconds`` is the
        *measured* wall-clock of the training phase; ``cpu_seconds``
        is the per-task training-time sum, so with ``jobs > 1`` on a
        multi-core machine wall < cpu.
        """
        if not isinstance(trace, (FlowTrace, PacketTrace)):
            raise TypeError("NetShare fits on FlowTrace or PacketTrace")
        if len(trace) == 0:
            raise ValueError("cannot fit on an empty trace")
        cfg = self.config
        self._kind = "netflow" if isinstance(trace, FlowTrace) else "pcap"
        self._encoder = self._make_encoder(trace)
        windows = self._chunk_windows(trace)
        chunk_lists = chunk_flows(trace, cfg.n_chunks)

        # Public pre-training for DP (Insight 4).
        pretrained_state = None
        if cfg.dp is not None and cfg.dp_public_dataset is not None:
            pretrained_state = self._pretrain_public()

        occupied = [
            (c, flows, window)
            for c, (flows, window) in enumerate(zip(chunk_lists, windows))
            if flows
        ]
        if not occupied:
            raise ValueError("no non-empty chunks to train on")
        gan_config = self._gan_config(self._encoder)
        encoded = {c: self._encoder.encode_chunk(flows, window)
                   for c, flows, window in occupied}

        results: Dict[int, ChunkResult] = {}
        modes: Dict[int, str] = {}
        wall_start = time.perf_counter()
        # Zero-copy data plane: under the shm backend the encoded chunk
        # tensors (and any warm-start state) live in a SharedArena for
        # the duration of the dispatch — tasks carry manifests, workers
        # attach, and the arena unlinks every block on exit no matter
        # how training ends.  The executor's worker pool lives for the
        # same window (closed by the ``with``).
        with get_executor(cfg.jobs, cfg.backend, cfg.hosts) as executor, \
                span("netshare.fit", backend=executor.name,
                     n_chunks=len(occupied)), \
                maybe_arena(executor) as arena:
            self.backend = executor.name
            emit_event("fit_start", model="netshare",
                       backend=executor.name, jobs=executor.jobs,
                       n_chunks=len(occupied), records=len(trace))
            staged = ({c: arena.share_encoded(e) for c, e in encoded.items()}
                      if arena is not None else encoded)

            def make_task(c: int, epochs: int, mode: str,
                          init_state=None) -> ChunkTask:
                modes[c] = mode
                return ChunkTask(
                    chunk_index=c, encoded=staged[c], gan_config=gan_config,
                    seed=cfg.seed + c, epochs=epochs, mode=mode,
                    init_state=init_state, dp_config=cfg.dp,
                )

            if cfg.dp is not None:
                # Every chunk fine-tunes (or trains) independently with
                # DP-SGD, optionally warm-started from the public model.
                epochs = (cfg.epochs_fine_tune
                          if pretrained_state is not None
                          else cfg.epochs_seed)
                init = freeze_state(pretrained_state, arena)
                tasks = [make_task(c, epochs, "fit_dp", init)
                         for c, _, _ in occupied]
                batch = executor.map_tasks(train_chunk, tasks)
            elif cfg.fine_tune_chunks and len(occupied) > 1:
                # Insight 3: the seed chunk trains first; every other
                # chunk warm-starts from it and fans out across the
                # backend.  The seed state is frozen (pickled) once and
                # shared by every fine-tune task rather than being
                # re-serialized into each payload.
                seed_index = occupied[0][0]
                seed_result = train_chunk(
                    make_task(seed_index, cfg.epochs_seed, "fit"))
                modes[seed_index] = "seed"
                init = freeze_state(seed_result.state, arena)
                tasks = [make_task(c, cfg.epochs_fine_tune, "fine_tune",
                                   init)
                         for c, _, _ in occupied[1:]]
                batch = ([seed_result]
                         + executor.map_tasks(train_chunk, tasks))
            else:
                # No warm start: chunks are fully independent tasks.
                tasks = [make_task(c, cfg.epochs_seed, "fit")
                         for c, _, _ in occupied]
                batch = executor.map_tasks(train_chunk, tasks)
            self.wall_seconds = time.perf_counter() - wall_start
            self.dispatch_bytes = executor.dispatch_bytes
            self.dispatch_tasks = executor.dispatch_tasks
        for result in batch:
            results[result.chunk_index] = result
            emit_event("chunk_result", chunk=result.chunk_index,
                       mode=modes.get(result.chunk_index),
                       train_seconds=result.train_seconds,
                       epochs=len(result.log.d_loss),
                       steps=result.log.steps)

        self._chunks = []
        for c, flows, window in occupied:
            result = results[c]
            model = DoppelGANger.from_state(
                gan_config, result.state, seed=cfg.seed + c, log=result.log)
            self._chunks.append(_TrainedChunk(
                index=c, model=model, window=window, n_flows=len(flows),
                n_records=sum(len(f) for f in flows),
            ))
        self.cpu_seconds = float(
            sum(r.train_seconds for r in results.values()))
        if cfg.dp is not None:
            self.spent_epsilon = self._account_epsilon()
        emit_event("fit_end", model="netshare", backend=self.backend,
                   wall_seconds=self.wall_seconds,
                   cpu_seconds=self.cpu_seconds,
                   epsilon=self.spent_epsilon)
        return self

    def _pretrain_public(self):
        cfg = self.config
        public = load_dataset(cfg.dp_public_dataset,
                              n_records=cfg.dp_public_records,
                              seed=cfg.seed + 13)
        public_kind = "netflow" if isinstance(public, FlowTrace) else "pcap"
        if public_kind != self._kind:
            raise ValueError(
                "public pre-training dataset must match the private kind"
            )
        flows = split_into_flows(public)
        window = time_range(public)
        # The public encoder shares this instance's field encoders so
        # the pretrained weights transfer.
        encoded = self._encoder.encode_chunk(
            [f for f in flows], window
        )
        model = DoppelGANger(self._gan_config(self._encoder), seed=cfg.seed)
        model.fit(encoded, epochs=cfg.dp_public_epochs)
        return model.state_dict()

    def _account_epsilon(self) -> float:
        cfg = self.config
        accountant = RdpAccountant()
        for chunk in self._chunks:
            model = chunk.model
            sampling = min(1.0, cfg.batch_size / max(chunk.n_flows, 1))
            if cfg.dp.noise_multiplier <= 0:
                return float("inf")
            steps = model.log.steps * model.config.n_critic
            accountant.step(cfg.dp.noise_multiplier, sampling,
                            num_steps=steps)
            if _TELEMETRY.enabled:
                # Cumulative ε after each chunk: the report CLI renders
                # this as the run's privacy trajectory.
                emit_event("dp_epsilon", chunk=chunk.index, steps=steps,
                           epsilon=accountant.get_epsilon(cfg.dp.delta))
        return accountant.get_epsilon(cfg.dp.delta)

    # ------------------------------------------------------------------
    _SAVE_FORMAT = "netshare-npz"
    _SAVE_VERSION = 1

    def save(self, path) -> None:
        """Persist the trained model to a single ``.npz`` archive.

        The archive holds the full config, the fitted encoder state
        (field scalers + IP2Vec dictionary), and every chunk's
        ``state_dict`` — enough to :meth:`load` and generate without
        retraining.
        """
        if self._encoder is None or not self._chunks:
            raise RuntimeError("NetShare is not fitted; call fit() first")
        chunks = {}
        for position, chunk in enumerate(self._chunks):
            chunks[f"chunk_{position}"] = {
                "index": chunk.index,
                "window": np.asarray(chunk.window, dtype=np.float64),
                "n_flows": chunk.n_flows,
                "n_records": chunk.n_records,
                "log": {
                    "d_loss": [float(v) for v in chunk.model.log.d_loss],
                    "g_loss": [float(v) for v in chunk.model.log.g_loss],
                    "wall_seconds": chunk.model.log.wall_seconds,
                    "steps": chunk.model.log.steps,
                },
                "model": chunk.model.state_dict(),
            }
        save_state_npz(path, {
            "format": self._SAVE_FORMAT,
            "version": self._SAVE_VERSION,
            "kind": self._kind,
            "config": asdict(self.config),
            "cpu_seconds": self.cpu_seconds,
            "wall_seconds": self.wall_seconds,
            "backend": self.backend,
            "spent_epsilon": self.spent_epsilon,
            "encoder": self._encoder.state_dict(),
            "chunks": chunks,
        })

    @classmethod
    def load(cls, path) -> "NetShare":
        """Rebuild a trained model saved with :meth:`save`.

        The loaded model generates bit-identically to the one that was
        saved (given the same ``generate`` seed).
        """
        state = load_state_npz(path)
        if state.get("format") != cls._SAVE_FORMAT:
            raise ValueError(f"{path} is not a NetShare model archive")
        cfg_data = dict(state["config"])
        dp_data = cfg_data.pop("dp", None)
        config = NetShareConfig(
            dp=DpSgdConfig(**dp_data) if dp_data is not None else None,
            **cfg_data)
        model = cls(config)
        model._kind = str(state["kind"])
        model._encoder = FlowTensorEncoder.from_state(state["encoder"])
        gan_config = model._gan_config(model._encoder)
        model._chunks = []
        for position in range(len(state["chunks"])):
            entry = state["chunks"][f"chunk_{position}"]
            log = TrainingLog(
                d_loss=[float(v) for v in entry["log"]["d_loss"]],
                g_loss=[float(v) for v in entry["log"]["g_loss"]],
                wall_seconds=float(entry["log"]["wall_seconds"]),
                steps=int(entry["log"]["steps"]),
            )
            index = int(entry["index"])
            model._chunks.append(_TrainedChunk(
                index=index,
                model=DoppelGANger.from_state(
                    gan_config, entry["model"],
                    seed=config.seed + index, log=log),
                window=tuple(float(v) for v in entry["window"]),
                n_flows=int(entry["n_flows"]),
                n_records=int(entry["n_records"]),
            ))
        model.cpu_seconds = float(state["cpu_seconds"])
        model.wall_seconds = float(state["wall_seconds"])
        model.backend = (None if state["backend"] is None
                         else str(state["backend"]))
        model.spent_epsilon = (None if state["spent_epsilon"] is None
                               else float(state["spent_epsilon"]))
        return model

    # ------------------------------------------------------------------
    @staticmethod
    def _generate_seeds(base_seed: int, round_index: int,
                        chunk_index: int) -> Tuple[int, int]:
        """Derive one chunk's (sample, decode) seeds for one retry round.

        Deterministic in ``(seed, round, chunk index)`` only — never in
        scheduling order — so every backend produces bit-identical
        output, and every retry round draws a fresh stream (a
        degenerate round can't resample the same empty batch forever).
        """
        entropy = np.random.SeedSequence(
            [base_seed & (2**63 - 1), round_index, chunk_index])
        sample, decode = entropy.generate_state(2, dtype=np.uint64)
        return int(sample), int(decode)

    def generate(self, n_records: int, seed: Optional[int] = None,
                 jobs: Optional[int] = None,
                 backend: Optional[str] = None,
                 hosts: Optional[str] = None):
        """Generate a synthetic trace with roughly ``n_records`` records.

        Per-chunk sampling and decoding fan out as
        :class:`~repro.runtime.chunk_tasks.GenerateTask` work items
        through the same executor layer as training: ``jobs`` /
        ``backend`` default to the fitted config's values, and results
        are bit-identical across backends because every task's seeds
        derive from ``(seed, retry round, chunk index)``.

        The round loop itself lives in :class:`GenerateSession`; this
        method drives one session to completion on its own executor.
        Callers that pool many requests onto one executor (the
        ``repro.serve`` daemon) drive sessions directly and get
        bit-identical output, because a session's tasks and seeds never
        depend on what else shares the batch.
        """
        session = GenerateSession(self, n_records, seed=seed)
        cfg = self.config
        wall_start = time.perf_counter()
        with get_executor(cfg.jobs if jobs is None else jobs,
                          cfg.backend if backend is None else backend,
                          cfg.hosts if hosts is None else hosts
                          ) as executor, \
                span("netshare.generate", backend=executor.name,
                     target=n_records), \
                maybe_arena(executor) as arena:
            emit_event("generate_start", model="netshare",
                       backend=executor.name, jobs=executor.jobs,
                       target=n_records, chunks=len(self._chunks))
            if arena is not None:
                session.stage(arena)
            while not session.done:
                tasks = session.plan_round()
                session.consume_round(
                    executor.map_tasks(generate_chunk, tasks))
            self.generate_wall_seconds = time.perf_counter() - wall_start
            self.generate_dispatch_bytes = executor.dispatch_bytes
        emit_event("generate_end", model="netshare",
                   wall_seconds=self.generate_wall_seconds,
                   records=session.produced,
                   rounds=len(session.rounds_log))
        return session.finish()


class GenerateSession:
    """Resumable plan/consume state machine for one ``generate`` call.

    One session owns everything :meth:`NetShare.generate` used to keep
    as loop-local state: the frozen encoder/model blobs, the
    records-per-flow estimates, the produced pieces, and the per-round
    accept/reject log.  Each round, :meth:`plan_round` emits the
    :class:`~repro.runtime.chunk_tasks.GenerateTask` list for the
    current shortfall and :meth:`consume_round` folds the results back
    in — *who* executes the tasks (a private executor, a shared daemon
    pool, interleaved with other sessions' tasks) is invisible to the
    session, because every task's seeds derive from
    ``(seed, round, chunk index)`` and every size is pre-bucketed by
    :func:`repro.nn.bucket_size`.  That is the serving-layer contract:
    a coalesced request is bit-identical to an offline
    ``NetShare.generate`` with the same seed.
    """

    #: Top-up rounds before a session gives up (matches the historical
    #: ``generate`` retry cap).
    MAX_ROUNDS = 8

    def __init__(self, model: NetShare, n_records: int,
                 seed: Optional[int] = None, *,
                 encoder_state=None, model_states=None):
        if model._encoder is None or not model._chunks:
            raise RuntimeError("NetShare is not fitted; call fit() first")
        if n_records < 1:
            raise ValueError("must generate at least one record")
        self.model = model
        self.n_records = int(n_records)
        cfg = model.config
        self.base_seed = int(cfg.seed if seed is None else seed)
        self._rng = np.random.default_rng(self.base_seed)
        self._gan_config = model._gan_config(model._encoder)
        self._total_records = sum(c.n_records for c in model._chunks)
        # Frozen once per session: every task (across chunks and retry
        # rounds) shares the same pre-pickled encoder/model blobs.
        # Callers with a hot registry (repro.serve) pass pre-frozen
        # handles in, skipping even the once-per-call pickling.
        self.encoder_state = (freeze_state(model._encoder.state_dict())
                              if encoder_state is None else encoder_state)
        self.model_states = (dict(model_states)
                             if model_states is not None else
                             {c.index: freeze_state(c.model.state_dict())
                              for c in model._chunks})
        # Flows emit a variable number of records (generation flags),
        # so sessions top up over a few rounds until the target count
        # is reached.  The records-per-flow estimate starts from the
        # real data and is recalibrated from what the generator emits.
        self._rpf_estimate = {
            c.index: min(max(c.n_records / c.n_flows, 1.0),
                         float(cfg.max_timesteps))
            for c in model._chunks
        }
        self.pieces: List = []
        self.produced = 0
        self.round_index = 0
        # Per-round accept/reject diagnostics: kept unconditionally (a
        # handful of dicts) so the exhaustion error in finish() can say
        # *what happened each round*, and journaled as generate_round
        # events when telemetry is on.
        self.rounds_log: List[Dict[str, float]] = []
        self._round_start: Optional[float] = None

    @property
    def shortfall(self) -> int:
        return self.n_records - self.produced

    @property
    def done(self) -> bool:
        """True once the target is met or the retry budget is spent."""
        return self.shortfall <= 0 or self.round_index >= self.MAX_ROUNDS

    def stage(self, arena) -> None:
        """Re-freeze the session's blobs into a SharedArena so tasks
        dispatch manifests instead of pickled bytes (shm backend)."""
        self.encoder_state = freeze_state(self.encoder_state, arena)
        self.model_states = {i: freeze_state(s, arena)
                             for i, s in self.model_states.items()}

    def plan_round(self) -> List[GenerateTask]:
        """Build this round's per-chunk tasks for the current shortfall
        (empty once the session is done)."""
        if self.done:
            return []
        self._round_start = time.perf_counter()
        tasks = []
        for chunk in self.model._chunks:
            share = chunk.n_records / self._total_records
            # Bucketed task sizes: bucket values are fixed points of
            # the sampler's own padding, so every round and chunk with
            # a similar shortfall hits the same warm inference tape in
            # its worker instead of recording a new one.
            n_flows = bucket_size(max(1, int(np.ceil(
                self.shortfall * share
                / self._rpf_estimate[chunk.index] * 1.1))))
            sample_seed, decode_seed = NetShare._generate_seeds(
                self.base_seed, self.round_index, chunk.index)
            tasks.append(GenerateTask(
                chunk_index=chunk.index, gan_config=self._gan_config,
                model_state=self.model_states[chunk.index],
                encoder_state=self.encoder_state, window=chunk.window,
                n_flows=n_flows, sample_seed=sample_seed,
                decode_seed=decode_seed,
            ))
        return tasks

    def consume_round(self, results) -> None:
        """Fold one round's :class:`~repro.runtime.chunk_tasks.
        GeneratePiece` results (in task order) back into the session."""
        accepted = 0
        round_records = 0
        n_tasks = 0
        for piece in results:
            n_tasks += 1
            # A degenerate model can emit flows whose every timestep is
            # inactive; the task reports those as trace=None so an
            # empty piece never poisons the concatenate in finish().
            if piece.trace is None:
                continue
            accepted += 1
            round_records += len(piece.trace)
            self.pieces.append(piece.trace)
            self.produced += len(piece.trace)
            self._rpf_estimate[piece.chunk_index] = max(
                len(piece.trace) / piece.n_flows, 1.0)
        round_seconds = (time.perf_counter() - self._round_start
                         if self._round_start is not None else 0.0)
        self.rounds_log.append({
            "round": self.round_index, "tasks": n_tasks,
            "accepted": accepted,
            "rejected": n_tasks - accepted,
            "records": round_records,
            "shortfall": max(self.n_records - self.produced, 0),
            "seconds": round(round_seconds, 6),
            "samples_per_sec": round(round_records / round_seconds, 2)
            if round_seconds > 0 else 0.0,
        })
        emit_event("generate_round", **self.rounds_log[-1])
        self.round_index += 1

    def finish(self):
        """Concatenate, post-process, and trim the session's output."""
        if not self.pieces:
            per_round = "; ".join(
                f"round {entry['round']}: {entry['accepted']}/{entry['tasks']}"
                " chunks accepted, "
                f"{entry['rejected']} rejected, +{entry['records']} records"
                for entry in self.rounds_log)
            raise RuntimeError(
                "generation produced no records after "
                f"{len(self.rounds_log)} rounds: every chunk model decoded "
                f"to an empty trace (degenerate generator?) [{per_round}]; "
                "retrain with more epochs or a different seed")
        trace = type(self.pieces[0]).concatenate(self.pieces)
        if isinstance(trace, PacketTrace):
            trace = finalize_packet_trace(trace, rng=self._rng)
        else:
            trace = finalize_flow_trace(trace)
        if len(trace) > self.n_records:
            keep = np.sort(self._rng.choice(
                len(trace), size=self.n_records, replace=False))
            trace = trace.subset(keep)
        return trace
