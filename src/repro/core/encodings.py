"""Field-encoding primitives (paper Insight 2, Table 2).

NetShare chooses representations per field to balance fidelity,
scalability, and privacy:

* **bit encoding** for IP addresses (and optionally ports) — each bit
  becomes one 0/1 feature; data-independent, hence DP-compatible;
* **log transform** ``log(1+x)`` for numeric fields with large support
  (packets/bytes per flow), min-max scaled to [0, 1];
* **one-hot** for small categorical fields (protocol, label);
* **byte encoding** kept for the baselines that use it (Table 2's
  'IP/byte' row).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "BitEncoder",
    "ByteEncoder",
    "LogMinMaxEncoder",
    "MinMaxEncoder",
    "OneHotEncoder",
]


class BitEncoder:
    """Fixed-width big-endian binary encoding of unsigned integers."""

    def __init__(self, n_bits: int):
        if not 1 <= n_bits <= 64:
            raise ValueError("n_bits must be in [1, 64]")
        self.n_bits = n_bits
        self._shifts = np.arange(n_bits - 1, -1, -1, dtype=np.uint64)

    @property
    def width(self) -> int:
        return self.n_bits

    def encode(self, values: np.ndarray) -> np.ndarray:
        """(n,) ints -> (n, n_bits) floats in {0, 1}."""
        values = np.asarray(values, dtype=np.uint64)
        if self.n_bits < 64 and np.any(values >= (np.uint64(1) << np.uint64(self.n_bits))):
            raise ValueError(f"value does not fit in {self.n_bits} bits")
        bits = (values[:, None] >> self._shifts[None, :]) & np.uint64(1)
        return bits.astype(np.float64)

    def decode(self, encoded: np.ndarray) -> np.ndarray:
        """(n, n_bits) floats -> (n,) ints; bits threshold at 0.5."""
        encoded = np.asarray(encoded, dtype=np.float64)
        if encoded.shape[-1] != self.n_bits:
            raise ValueError("encoded width mismatch")
        bits = (encoded > 0.5).astype(np.uint64)
        return (bits << self._shifts[None, :]).sum(axis=-1)


class ByteEncoder:
    """Byte-level encoding (values in [0,255] scaled to [0,1]) as used
    by PAC-GAN/Flow-WGAN-style baselines."""

    def __init__(self, n_bytes: int):
        if not 1 <= n_bytes <= 8:
            raise ValueError("n_bytes must be in [1, 8]")
        self.n_bytes = n_bytes
        self._shifts = np.arange(n_bytes - 1, -1, -1) * 8

    @property
    def width(self) -> int:
        return self.n_bytes

    def encode(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.uint64)
        by = (values[:, None] >> self._shifts[None, :].astype(np.uint64)) & np.uint64(0xFF)
        return by.astype(np.float64) / 255.0

    def decode(self, encoded: np.ndarray) -> np.ndarray:
        encoded = np.asarray(encoded, dtype=np.float64)
        by = np.clip(np.round(encoded * 255.0), 0, 255).astype(np.uint64)
        return (by << self._shifts[None, :].astype(np.uint64)).sum(axis=-1)


class MinMaxEncoder:
    """Min-max scale a continuous field to [0, 1] (DoppelGANger's
    normalisation for continuous fields, Appendix C)."""

    def __init__(self):
        self.low: Optional[float] = None
        self.high: Optional[float] = None

    @property
    def width(self) -> int:
        return 1

    def fit(self, values: np.ndarray) -> "MinMaxEncoder":
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            raise ValueError("cannot fit on an empty field")
        self.low = float(values.min())
        self.high = float(values.max())
        return self

    def state_dict(self) -> dict:
        return {"low": self.low, "high": self.high}

    def load_state_dict(self, state: dict) -> "MinMaxEncoder":
        self.low = None if state["low"] is None else float(state["low"])
        self.high = None if state["high"] is None else float(state["high"])
        return self

    def _check(self):
        if self.low is None:
            raise RuntimeError("encoder is not fitted; call fit() first")

    def encode(self, values: np.ndarray) -> np.ndarray:
        self._check()
        values = np.asarray(values, dtype=np.float64)
        span = self.high - self.low
        if span == 0:
            return np.zeros((len(values), 1))
        return np.clip((values - self.low) / span, 0.0, 1.0)[:, None]

    def decode(self, encoded: np.ndarray) -> np.ndarray:
        self._check()
        encoded = np.clip(np.asarray(encoded, dtype=np.float64), 0.0, 1.0)
        return self.low + encoded[..., 0] * (self.high - self.low)


class LogMinMaxEncoder:
    """log(1+x) then min-max to [0, 1]: the Insight-2 transform for
    large-support numeric fields (packets/bytes per flow, durations)."""

    def __init__(self):
        self._inner = MinMaxEncoder()

    @property
    def width(self) -> int:
        return 1

    def fit(self, values: np.ndarray) -> "LogMinMaxEncoder":
        values = np.asarray(values, dtype=np.float64)
        if np.any(values < 0):
            raise ValueError("log transform requires non-negative values")
        self._inner.fit(np.log1p(values))
        return self

    def state_dict(self) -> dict:
        return self._inner.state_dict()

    def load_state_dict(self, state: dict) -> "LogMinMaxEncoder":
        self._inner.load_state_dict(state)
        return self

    def encode(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return self._inner.encode(np.log1p(np.maximum(values, 0.0)))

    def decode(self, encoded: np.ndarray) -> np.ndarray:
        return np.expm1(self._inner.decode(encoded))


class QuantileEncoder:
    """Empirical-CDF (quantile) transform to [0, 1].

    Encoding maps a value to its quantile position in the training
    distribution (optionally computed in log space for heavy-tailed
    fields); decoding interpolates the inverse empirical CDF.  Compared
    to plain log-min-max, the GAN's target marginal becomes uniform on
    [0, 1] — far easier to match at small scale — while decode
    faithfully reproduces the training marginal's body *and* tail.
    This refines the paper's log(1+x) Insight-2 transform; the 'log'
    and 'linear' encoders remain available for the ablation bench.
    """

    def __init__(self, log_space: bool = True, max_points: int = 2048):
        if max_points < 2:
            raise ValueError("need at least two interpolation points")
        self.log_space = log_space
        self.max_points = max_points
        self._grid = None       # quantile positions in [0, 1]
        self._values = None     # corresponding (transformed) values

    @property
    def width(self) -> int:
        return 1

    def _forward(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if self.log_space:
            if np.any(values < 0):
                raise ValueError("log-space quantile encoding requires "
                                 "non-negative values")
            return np.log1p(values)
        return values

    def _backward(self, values: np.ndarray) -> np.ndarray:
        return np.expm1(values) if self.log_space else values

    def fit(self, values: np.ndarray) -> "QuantileEncoder":
        transformed = np.sort(self._forward(values))
        if len(transformed) == 0:
            raise ValueError("cannot fit on an empty field")
        if len(transformed) > self.max_points:
            positions = np.linspace(0, len(transformed) - 1, self.max_points)
            transformed = transformed[np.round(positions).astype(int)]
        self._values = transformed
        self._grid = (np.arange(len(transformed)) /
                      max(len(transformed) - 1, 1))
        return self

    def state_dict(self) -> dict:
        state = {"log_space": self.log_space, "max_points": self.max_points}
        if self._values is not None:
            state["grid"] = self._grid.copy()
            state["values"] = self._values.copy()
        return state

    def load_state_dict(self, state: dict) -> "QuantileEncoder":
        self.log_space = bool(state["log_space"])
        self.max_points = int(state["max_points"])
        if "values" in state:
            self._grid = np.asarray(state["grid"], dtype=np.float64)
            self._values = np.asarray(state["values"], dtype=np.float64)
        else:
            self._grid = self._values = None
        return self

    def _check(self):
        if self._values is None:
            raise RuntimeError("encoder is not fitted; call fit() first")

    def encode(self, values: np.ndarray) -> np.ndarray:
        self._check()
        transformed = self._forward(values)
        positions = np.interp(transformed, self._values, self._grid)
        return positions[:, None]

    def decode(self, encoded: np.ndarray) -> np.ndarray:
        self._check()
        positions = np.clip(np.asarray(encoded, dtype=np.float64), 0.0, 1.0)
        return self._backward(np.interp(positions[..., 0],
                                        self._grid, self._values))


class OneHotEncoder:
    """One-hot over an explicit category list; decode = argmax."""

    def __init__(self, categories: Sequence[int]):
        categories = list(categories)
        if not categories:
            raise ValueError("need at least one category")
        if len(set(categories)) != len(categories):
            raise ValueError("categories must be distinct")
        self.categories = np.array(categories, dtype=np.int64)
        self._index = {int(c): i for i, c in enumerate(categories)}

    @property
    def width(self) -> int:
        return len(self.categories)

    def encode(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        out = np.zeros((len(values), len(self.categories)))
        for i, v in enumerate(values):
            j = self._index.get(int(v))
            if j is None:
                raise ValueError(f"value {v} not in categories")
            out[i, j] = 1.0
        return out

    def decode(self, encoded: np.ndarray) -> np.ndarray:
        encoded = np.asarray(encoded, dtype=np.float64)
        if encoded.shape[-1] != len(self.categories):
            raise ValueError("encoded width mismatch")
        return self.categories[encoded.argmax(axis=-1)]
