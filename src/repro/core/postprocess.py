"""Post-processing of generated traces (paper §4.2).

After the GAN generates and the encoder decodes, NetShare:

1. maps embedded fields back to natural values (done in the encoder's
   nearest-neighbour decode),
2. generates *derived* fields excluded from learning — for PCAP data
   the IPv4 header checksum is computed from the generated header
   fields (the paper's explicit two-step design choice),
3. merges records back into one trace ordered by raw timestamp / flow
   start time.

An optional ``enforce_semantics`` pass clamps protocol-illegal values
(packet sizes under the TCP/UDP minimum, byte counts outside
[min*pkt, 65535*pkt]).  It is off by default: NetShare does not
hard-enforce these, which is why Tables 6/7 report high-but-not-100%
compliance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..datasets.records import FlowTrace, PacketTrace, PROTO_TCP, PROTO_UDP

__all__ = [
    "ipv4_checksum",
    "compute_checksums",
    "finalize_packet_trace",
    "finalize_flow_trace",
    "enforce_flow_semantics",
    "enforce_packet_semantics",
]


def ipv4_checksum(words: np.ndarray) -> np.ndarray:
    """Internet checksum over (n, k) arrays of 16-bit header words."""
    total = words.astype(np.uint64).sum(axis=1)
    while np.any(total > 0xFFFF):
        total = (total & 0xFFFF) + (total >> 16)
    return (~total & 0xFFFF).astype(np.int64)


def compute_checksums(trace: PacketTrace) -> np.ndarray:
    """IPv4 header checksum for every packet in a trace.

    Header layout (no options, IHL=5): version/IHL/TOS, total length,
    identification, flags/fragment offset (0), TTL/protocol, checksum
    field zeroed, source and destination addresses.
    """
    n = len(trace)
    words = np.zeros((n, 10), dtype=np.uint64)
    words[:, 0] = 0x4500  # version 4, IHL 5, TOS 0
    words[:, 1] = np.clip(trace.packet_size, 0, 0xFFFF)
    words[:, 2] = trace.ip_id & 0xFFFF
    words[:, 3] = 0  # flags/fragment
    words[:, 4] = ((trace.ttl & 0xFF) << 8) | (trace.protocol & 0xFF)
    words[:, 5] = 0  # checksum placeholder
    words[:, 6] = (trace.src_ip.astype(np.uint64) >> 16) & 0xFFFF
    words[:, 7] = trace.src_ip.astype(np.uint64) & 0xFFFF
    words[:, 8] = (trace.dst_ip.astype(np.uint64) >> 16) & 0xFFFF
    words[:, 9] = trace.dst_ip.astype(np.uint64) & 0xFFFF
    return ipv4_checksum(words)


def finalize_packet_trace(trace: PacketTrace,
                          rng: Optional[np.random.Generator] = None
                          ) -> PacketTrace:
    """Fill derived fields and order by raw timestamp."""
    out = trace.sort_by_time()
    if rng is not None and np.all(out.ip_id == 0):
        out.ip_id = rng.integers(0, 65536, size=len(out)).astype(np.int64)
    out.checksum = compute_checksums(out)
    return out


def finalize_flow_trace(trace: FlowTrace) -> FlowTrace:
    """Order NetFlow records by raw flow start time."""
    return trace.sort_by_time()


def enforce_flow_semantics(trace: FlowTrace) -> FlowTrace:
    """Clamp bytes/packets into the protocol-legal envelope (Test 2)."""
    out = trace.subset(slice(None))
    out.packets = np.maximum(out.packets, 1)
    for proto, floor in ((PROTO_TCP, 40), (PROTO_UDP, 28)):
        mask = out.protocol == proto
        lower = floor * out.packets[mask]
        upper = 65535 * out.packets[mask]
        out.bytes[mask] = np.clip(out.bytes[mask], lower, upper)
    return out


def enforce_packet_semantics(trace: PacketTrace) -> PacketTrace:
    """Clamp packet sizes to protocol minimums / the MTU (Test 4)."""
    out = trace.subset(slice(None))
    for proto, floor in ((PROTO_TCP, 40), (PROTO_UDP, 28)):
        mask = out.protocol == proto
        out.packet_size[mask] = np.clip(out.packet_size[mask], floor, 65535)
    return out
