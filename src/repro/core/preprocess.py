"""Preprocessing: merge epochs, split into flows, chunk by time.

Insight 1: merge measurement epochs into one giant trace D, split it
into five-tuple flows D^flow, and model each flow as a time series
(metadata = five-tuple, measurements = its records/packets).

Insight 3: slice D^flow into M evenly *time-spaced* chunks (fixed time
intervals, not fixed record counts — the paper argues count-based
splits break DP sensitivity).  Each flow appearing in a chunk gets an
explicit flow tag: a 0/1 "starts in this chunk" flag plus an M-bit
vector marking every chunk the flow appears in, which lets independent
per-chunk models preserve cross-chunk correlations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..datasets.records import FlowTrace, PacketTrace

__all__ = ["FlowSeries", "split_into_flows", "chunk_flows", "time_range"]

#: Raw per-record columns carried through the pipeline.
NETFLOW_RECORD_COLUMNS = (
    "start_time", "duration", "packets", "bytes", "label", "attack_type"
)
PCAP_RECORD_COLUMNS = ("timestamp", "packet_size", "ttl")


@dataclass
class FlowSeries:
    """One five-tuple flow's records inside one chunk.

    ``records`` is (T, d) with columns given by the trace kind's column
    tuple above, ordered by time.
    """

    key: Tuple[int, int, int, int, int]  # (src_ip, dst_ip, sp, dp, proto)
    records: np.ndarray
    starts_here: bool = True
    presence: Optional[np.ndarray] = None  # (n_chunks,) 0/1 vector

    def __len__(self) -> int:
        return len(self.records)

    @property
    def start_time(self) -> float:
        return float(self.records[0, 0])


def _record_matrix(trace, indices: np.ndarray) -> np.ndarray:
    if isinstance(trace, FlowTrace):
        return np.column_stack([
            trace.start_time[indices], trace.duration[indices],
            trace.packets[indices].astype(np.float64),
            trace.bytes[indices].astype(np.float64),
            trace.label[indices].astype(np.float64),
            trace.attack_type[indices].astype(np.float64),
        ])
    if isinstance(trace, PacketTrace):
        return np.column_stack([
            trace.timestamp[indices],
            trace.packet_size[indices].astype(np.float64),
            trace.ttl[indices].astype(np.float64),
        ])
    raise TypeError(f"unsupported trace type {type(trace).__name__}")


def _times(trace) -> np.ndarray:
    return trace.start_time if isinstance(trace, FlowTrace) else trace.timestamp


def time_range(trace) -> Tuple[float, float]:
    """(min, max) record time of a trace."""
    times = _times(trace)
    if len(times) == 0:
        raise ValueError("empty trace has no time range")
    return float(times.min()), float(times.max())


def split_into_flows(trace) -> List[FlowSeries]:
    """Split the giant trace into per-five-tuple time series (D^flow)."""
    flows = []
    times = _times(trace)
    for key, indices in trace.group_by_five_tuple().items():
        ordered = indices[np.argsort(times[indices], kind="stable")]
        flows.append(FlowSeries(key=key, records=_record_matrix(trace, ordered)))
    flows.sort(key=lambda f: f.start_time)
    return flows


def chunk_flows(trace, n_chunks: int) -> List[List[FlowSeries]]:
    """Slice D^flow into ``n_chunks`` equal time intervals with flow tags.

    A flow with records in k chunks yields k FlowSeries (one per chunk,
    holding that chunk's records), each tagged with ``starts_here`` and
    the shared M-bit ``presence`` vector.
    """
    if n_chunks < 1:
        raise ValueError("need at least one chunk")
    lo, hi = time_range(trace)
    edges = np.linspace(lo, hi, n_chunks + 1)
    edges[-1] = np.inf
    times = _times(trace)

    chunks: List[List[FlowSeries]] = [[] for _ in range(n_chunks)]
    for key, indices in trace.group_by_five_tuple().items():
        ordered = indices[np.argsort(times[indices], kind="stable")]
        record_chunks = np.clip(
            np.searchsorted(edges, times[ordered], side="right") - 1,
            0, n_chunks - 1,
        )
        presence = np.zeros(n_chunks)
        present = np.unique(record_chunks)
        presence[present] = 1.0
        first_chunk = int(present.min())
        for c in present:
            members = ordered[record_chunks == c]
            chunks[int(c)].append(FlowSeries(
                key=key,
                records=_record_matrix(trace, members),
                starts_here=(int(c) == first_chunk),
                presence=presence.copy(),
            ))
    for chunk in chunks:
        chunk.sort(key=lambda f: f.start_time)
    return chunks
