"""NetShare core: encodings, IP2Vec, preprocessing, the end-to-end
generator, and post-processing."""

from .encodings import (
    BitEncoder,
    ByteEncoder,
    LogMinMaxEncoder,
    MinMaxEncoder,
    OneHotEncoder,
)
from .flow_encoder import EncodedFlows, FlowTensorEncoder
from .ip2vec import IP2Vec, five_tuple_sentences, token
from .netshare import NetShare, NetShareConfig
from .postprocess import (
    compute_checksums,
    enforce_flow_semantics,
    enforce_packet_semantics,
    finalize_flow_trace,
    finalize_packet_trace,
    ipv4_checksum,
)
from .preprocess import FlowSeries, chunk_flows, split_into_flows, time_range

__all__ = [
    "BitEncoder", "ByteEncoder", "LogMinMaxEncoder", "MinMaxEncoder",
    "OneHotEncoder",
    "EncodedFlows", "FlowTensorEncoder",
    "IP2Vec", "five_tuple_sentences", "token",
    "NetShare", "NetShareConfig",
    "FlowSeries", "split_into_flows", "chunk_flows", "time_range",
    "ipv4_checksum", "compute_checksums", "finalize_packet_trace",
    "finalize_flow_trace", "enforce_flow_semantics",
    "enforce_packet_semantics",
]
